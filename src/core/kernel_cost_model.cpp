#include "core/kernel_cost_model.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <sstream>
#include <vector>

#include "core/pair_pass.h"
#include "util/fnv.h"
#include "util/logging.h"

namespace panacea {

namespace {

bool
nameEquals(std::string_view name, std::string_view want)
{
    if (name.size() != want.size())
        return false;
    for (std::size_t i = 0; i < name.size(); ++i) {
        char c = name[i];
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
        if (c != want[i])
            return false;
    }
    return true;
}

// setStreamPolicy() override; -1 = unset. Relaxed atomics suffice:
// callers must not race overrides against GEMM launches (see header).
std::atomic<int> g_policy_override{-1};

/** PANACEA_STREAM_POLICY request, read once; defaults to Measured.
 *  An empty value counts as unset (CI matrices export it that way). */
StreamPolicy
envStreamPolicy()
{
    static const StreamPolicy policy = [] {
        const char *env = std::getenv("PANACEA_STREAM_POLICY");
        if (env != nullptr && env[0] != '\0') {
            StreamPolicy requested;
            if (parseStreamPolicy(env, &requested))
                return requested;
            warn("ignoring unrecognized PANACEA_STREAM_POLICY=", env);
        }
        return StreamPolicy::Measured;
    }();
    return policy;
}

} // namespace

const char *
toString(StreamPolicy policy)
{
    switch (policy) {
      case StreamPolicy::Static:   return "static";
      case StreamPolicy::Measured: return "measured";
      case StreamPolicy::Stream:   return "stream";
      case StreamPolicy::Gather:   return "gather";
    }
    return "?";
}

bool
parseStreamPolicy(std::string_view name, StreamPolicy *out)
{
    if (nameEquals(name, "static"))
        *out = StreamPolicy::Static;
    else if (nameEquals(name, "measured"))
        *out = StreamPolicy::Measured;
    else if (nameEquals(name, "stream"))
        *out = StreamPolicy::Stream;
    else if (nameEquals(name, "gather"))
        *out = StreamPolicy::Gather;
    else
        return false;
    return true;
}

StreamPolicy
activeStreamPolicy()
{
    const int ov = g_policy_override.load(std::memory_order_relaxed);
    if (ov >= 0)
        return static_cast<StreamPolicy>(ov);
    return envStreamPolicy();
}

void
setStreamPolicy(StreamPolicy policy)
{
    g_policy_override.store(static_cast<int>(policy),
                            std::memory_order_relaxed);
}

void
resetStreamPolicy()
{
    g_policy_override.store(-1, std::memory_order_relaxed);
}

namespace detail {

namespace {

std::mutex g_table_mutex;
KernelCostTable g_table;
bool g_table_init = false;

std::mutex g_dir_mutex;
std::string g_dir_override;
bool g_dir_overridden = false;

std::uint64_t
checksumOf(const KernelCostTable &t)
{
    std::uint64_t h = fnv1a64Offset;
    h = fnv1a64Word(h, t.version);
    h = fnv1a64Word(h, static_cast<std::uint64_t>(
                           static_cast<int>(t.isa_cap)));
    for (std::size_t l = 0; l < kIsaLevelCount; ++l)
        for (std::size_t f = 0; f < kKernelFamilyCount; ++f) {
            const KernelCostEntry &e = t.entries[l][f];
            h = fnv1a64Word(h, e.measured ? 1 : 0);
            h = fnv1a64Word(h, e.gather_ps_per_step);
            h = fnv1a64Word(h, e.stream_ps_per_pair);
        }
    return h;
}

/**
 * Deterministic synthetic operands for one kernel family: a kk-step
 * band with an every-other-step skip list for the gather kernels and
 * pre-interleaved paired planes for the stream kernels. Values are
 * seeded (identical on every host) and irrelevant to the integer
 * kernels' timing; only the shapes matter.
 */
struct SyntheticOperands
{
    std::size_t kk = 0, nk = 0, pairs = 0;
    int v = 0;
    std::vector<std::int16_t> wp, xp, wq, xq;
    std::vector<std::uint32_t> ks;
    std::vector<std::int32_t> pacc;
};

SyntheticOperands
makeOperands(int v)
{
    SyntheticOperands ops;
    ops.kk = 2048;
    ops.v = v;
    const std::size_t uv = static_cast<std::size_t>(v);
    std::mt19937 rng(0x9e3779b9u);
    std::uniform_int_distribution<int> dist(-3, 3);
    const auto fill = [&](std::vector<std::int16_t> &vec,
                          std::size_t size) {
        vec.resize(size);
        for (auto &e : vec)
            e = static_cast<std::int16_t>(dist(rng));
    };
    fill(ops.wp, ops.kk * uv);
    fill(ops.xp, ops.kk * uv); // xp row length n = v, ng_off = 0
    ops.pairs = (ops.kk + 1) / 2;
    fill(ops.wq, ops.pairs * 2 * uv);
    fill(ops.xq, ops.pairs * 2 * uv);
    for (std::size_t k = 0; k < ops.kk; k += 2)
        ops.ks.push_back(static_cast<std::uint32_t>(k));
    ops.nk = ops.ks.size();
    ops.pacc.assign(uv * uv, 0);
    return ops;
}

/**
 * Best-of-3 per-unit cost in integer picoseconds. Each sample loops
 * the kernel enough to outlast timer noise; the minimum is the least
 * interference-polluted estimate. Clamped to >= 1 so a measured entry
 * can never degenerate into "free".
 */
template <class F>
std::uint64_t
psPerUnit(F &&run, std::size_t units)
{
    run(); // warm: icache, page-in, frequency ramp
    std::uint64_t best = ~std::uint64_t{0};
    for (int rep = 0; rep < 3; ++rep) {
        constexpr int iters = 16;
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            run();
        const auto ns = std::chrono::duration_cast<
                            std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        const std::uint64_t per =
            static_cast<std::uint64_t>(ns) * 1000ull /
            (static_cast<std::uint64_t>(iters) * units);
        if (per < best)
            best = per;
    }
    return best == 0 ? 1 : best;
}

void
measureAll(KernelCostTable &t)
{
    SyntheticOperands ops4 = makeOperands(4);
    SyntheticOperands ops8 = makeOperands(8);
    const IsaLevel cap = supportedIsaCap();
    for (int l = 0; l <= static_cast<int>(cap); ++l) {
        const PairPassKernels &kern =
            pairPassKernels(static_cast<IsaLevel>(l));
        {
            KernelCostEntry &e =
                t.entries[l][static_cast<int>(KernelFamily::Pass4)];
            if (kern.stream4 != nullptr) {
                SyntheticOperands &o = ops4;
                e.gather_ps_per_step = psPerUnit(
                    [&] {
                        kern.pass4(o.wp.data(), o.xp.data(),
                                   static_cast<std::size_t>(o.v), 0,
                                   o.ks.data(), o.nk, false,
                                   o.pacc.data());
                    },
                    o.nk);
                e.stream_ps_per_pair = psPerUnit(
                    [&] {
                        kern.stream4(o.wq.data(), o.xq.data(), o.pairs,
                                     o.pacc.data());
                    },
                    o.pairs);
                e.measured = true;
                t.measurements += 2;
            }
        }
        {
            KernelCostEntry &e =
                t.entries[l][static_cast<int>(KernelFamily::Generic)];
            if (kern.streamGeneric != nullptr) {
                SyntheticOperands &o = ops8;
                e.gather_ps_per_step = psPerUnit(
                    [&] {
                        kern.passGeneric(o.wp.data(), o.xp.data(),
                                         static_cast<std::size_t>(o.v),
                                         0, o.ks.data(), o.nk, false,
                                         o.v, o.pacc.data());
                    },
                    o.nk);
                e.stream_ps_per_pair = psPerUnit(
                    [&] {
                        kern.streamGeneric(o.wq.data(), o.xq.data(),
                                           o.pairs, o.v, o.pacc.data());
                    },
                    o.pairs);
                e.measured = true;
                t.measurements += 2;
            }
        }
    }
}

/** Minimal strict cursor over the calibration file's own format. */
struct Cursor
{
    std::string_view text;
    std::size_t pos = 0;
    bool ok = true;

    void
    ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\n' ||
                text[pos] == '\t' || text[pos] == '\r'))
            ++pos;
    }
    void
    lit(std::string_view want)
    {
        ws();
        if (ok && text.substr(pos, want.size()) == want)
            pos += want.size();
        else
            ok = false;
    }
    void
    u64(std::uint64_t *out)
    {
        ws();
        if (!ok || pos >= text.size() || text[pos] < '0' ||
            text[pos] > '9') {
            ok = false;
            return;
        }
        std::uint64_t v = 0;
        while (pos < text.size() && text[pos] >= '0' &&
               text[pos] <= '9') {
            if (v > (~std::uint64_t{0} - 9) / 10) {
                ok = false;
                return;
            }
            v = v * 10 + static_cast<std::uint64_t>(text[pos] - '0');
            ++pos;
        }
        *out = v;
    }
    void
    key(std::string_view name, std::uint64_t *out)
    {
        lit("\"");
        lit(name);
        lit("\"");
        lit(":");
        u64(out);
    }
};

std::string
resolvedCacheDir()
{
    std::lock_guard<std::mutex> lock(g_dir_mutex);
    if (g_dir_overridden)
        return g_dir_override;
    if (const char *dir = std::getenv("PANACEA_CACHE_DIR");
        dir != nullptr && *dir != '\0')
        return dir;
    return {};
}

KernelCostTable
resolveTable()
{
    KernelCostTable t;
    t.version = kKernelCostVersion;
    t.isa_cap = supportedIsaCap();
    const std::string path = kernelCostCachePath();
    if (!path.empty()) {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            const std::string text = buf.str();
            KernelCostTable loaded;
            if (parseKernelCosts(text, &loaded))
                return loaded;
            warn("ignoring invalid kernel-cost calibration at ", path);
        }
    }
    measureAll(t);
    if (!path.empty()) {
        // Best effort: a read-only cache dir costs re-measurement next
        // process, never correctness.
        std::error_code ec;
        std::filesystem::create_directories(
            std::filesystem::path(path).parent_path(), ec);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (out)
            out << serializeKernelCosts(t);
        if (!out)
            warn("could not persist kernel-cost calibration to ", path);
    }
    return t;
}

} // namespace

std::string
serializeKernelCosts(const KernelCostTable &table)
{
    std::ostringstream out;
    out << "{\n  \"version\": " << table.version << ",\n  \"isa_cap\": "
        << static_cast<int>(table.isa_cap) << ",\n  \"entries\": [\n";
    for (std::size_t l = 0; l < kIsaLevelCount; ++l)
        for (std::size_t f = 0; f < kKernelFamilyCount; ++f) {
            const KernelCostEntry &e = table.entries[l][f];
            out << "    {\"isa\": " << l << ", \"family\": " << f
                << ", \"measured\": " << (e.measured ? 1 : 0)
                << ", \"gather_ps_per_step\": " << e.gather_ps_per_step
                << ", \"stream_ps_per_pair\": " << e.stream_ps_per_pair
                << "}";
            if (l + 1 < kIsaLevelCount || f + 1 < kKernelFamilyCount)
                out << ",";
            out << "\n";
        }
    out << "  ],\n  \"checksum\": " << checksumOf(table) << "\n}\n";
    return out.str();
}

bool
parseKernelCosts(std::string_view text, KernelCostTable *out)
{
    KernelCostTable t;
    Cursor c{text};
    std::uint64_t version = 0, isa_cap = 0, checksum = 0;
    c.lit("{");
    c.key("version", &version);
    c.lit(",");
    c.key("isa_cap", &isa_cap);
    c.lit(",");
    c.lit("\"");
    c.lit("entries");
    c.lit("\"");
    c.lit(":");
    c.lit("[");
    for (std::size_t l = 0; c.ok && l < kIsaLevelCount; ++l)
        for (std::size_t f = 0; c.ok && f < kKernelFamilyCount; ++f) {
            std::uint64_t isa = 0, family = 0, measured = 0,
                          gather = 0, stream = 0;
            c.lit("{");
            c.key("isa", &isa);
            c.lit(",");
            c.key("family", &family);
            c.lit(",");
            c.key("measured", &measured);
            c.lit(",");
            c.key("gather_ps_per_step", &gather);
            c.lit(",");
            c.key("stream_ps_per_pair", &stream);
            c.lit("}");
            if (l + 1 < kIsaLevelCount || f + 1 < kKernelFamilyCount)
                c.lit(",");
            if (isa != l || family != f || measured > 1)
                c.ok = false;
            t.entries[l][f].measured = measured != 0;
            t.entries[l][f].gather_ps_per_step = gather;
            t.entries[l][f].stream_ps_per_pair = stream;
        }
    c.lit("]");
    c.lit(",");
    c.key("checksum", &checksum);
    c.lit("}");
    c.ws();
    if (!c.ok || c.pos != text.size())
        return false;
    if (version != kKernelCostVersion)
        return false;
    if (isa_cap >= kIsaLevelCount)
        return false;
    t.version = static_cast<std::uint32_t>(version);
    t.isa_cap = static_cast<IsaLevel>(static_cast<int>(isa_cap));
    if (checksumOf(t) != checksum)
        return false;
    // A calibration from a narrower build/host lacks the tiers this
    // process can run: re-measure rather than silently degrading them
    // to the static rule.
    if (t.isa_cap != supportedIsaCap())
        return false;
    t.loaded_from_disk = true;
    t.measurements = 0;
    *out = t;
    return true;
}

const KernelCostTable &
kernelCostTable()
{
    std::lock_guard<std::mutex> lock(g_table_mutex);
    if (!g_table_init) {
        g_table = resolveTable();
        g_table_init = true;
    }
    return g_table;
}

StreamDecision
streamDecision(IsaLevel level, KernelFamily family)
{
    StreamDecision d;
    d.policy = activeStreamPolicy();
    if (d.policy != StreamPolicy::Measured)
        return d;
    if (level > supportedIsaCap())
        level = supportedIsaCap(); // mirror the dispatch-table clamp
    const KernelCostTable &t = kernelCostTable();
    const KernelCostEntry &e =
        t.entries[static_cast<std::size_t>(level)]
                 [static_cast<std::size_t>(family)];
    if (e.measured && e.gather_ps_per_step > 0 &&
        e.stream_ps_per_pair > 0) {
        d.measured = true;
        d.gather_ps_per_step = e.gather_ps_per_step;
        d.stream_ps_per_pair = e.stream_ps_per_pair;
    }
    return d;
}

bool
reloadKernelCosts()
{
    std::lock_guard<std::mutex> lock(g_table_mutex);
    g_table = resolveTable();
    g_table_init = true;
    return g_table.loaded_from_disk;
}

void
setKernelCostCacheDir(std::string dir, bool reset)
{
    std::lock_guard<std::mutex> lock(g_dir_mutex);
    g_dir_overridden = !reset;
    g_dir_override = reset ? std::string{} : std::move(dir);
}

std::string
kernelCostCachePath()
{
    const std::string dir = resolvedCacheDir();
    if (dir.empty())
        return {};
    return dir + "/kernel_costs.json";
}

} // namespace detail
} // namespace panacea
