#include "core/legacy_gemm.h"

#include "slicing/sparsity.h"
#include "util/logging.h"

namespace panacea {

double
LegacyStats::macReduction() const
{
    if (denseOuterProducts == 0)
        return 0.0;
    return 1.0 - static_cast<double>(mults) /
                     (static_cast<double>(denseOuterProducts) * 16.0);
}

LegacyStats &
LegacyStats::operator+=(const LegacyStats &other)
{
    denseOuterProducts += other.denseOuterProducts;
    executedOuterProducts += other.executedOuterProducts;
    skippedOuterProducts += other.skippedOuterProducts;
    mults += other.mults;
    adds += other.adds;
    emaNibbles += other.emaNibbles;
    // Sparsities of merged records: keep the weighted blend by dense OPs
    // so model-level aggregation stays meaningful.
    double w_total = static_cast<double>(denseOuterProducts);
    if (w_total > 0.0) {
        double w_old = w_total - static_cast<double>(
            other.denseOuterProducts);
        rhoW = (rhoW * w_old + other.rhoW *
                static_cast<double>(other.denseOuterProducts)) / w_total;
        rhoX = (rhoX * w_old + other.rhoX *
                static_cast<double>(other.denseOuterProducts)) / w_total;
    }
    return *this;
}

MatrixI64
legacyBitsliceGemm(const SlicedMatrix &w, const SlicedMatrix &x, int v,
                   SibiaSkipSide side, LegacyStats *stats)
{
    const std::size_t m = w.rows();
    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    panic_if(x.rows() != kk, "legacy GEMM shape mismatch");
    panic_if(m % v != 0 || n % v != 0,
             "legacy GEMM needs M and N divisible by v=", v);

    const MatrixU8 w_mask = weightVectorMask(w.hoPlane().data, v);
    const MatrixU8 x_mask = activationVectorMask(x.hoPlane().data, v, 0);

    LegacyStats local;
    local.rhoW = maskDensityOfOnes(w_mask);
    local.rhoX = maskDensityOfOnes(x_mask);

    bool skip_weight;
    switch (side) {
      case SibiaSkipSide::Weight:     skip_weight = true; break;
      case SibiaSkipSide::Activation: skip_weight = false; break;
      case SibiaSkipSide::Auto:
      default:
        skip_weight = local.rhoW >= local.rhoX;
        break;
    }
    local.skippedWeightSide = skip_weight;

    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const int w_ho = static_cast<int>(w_levels) - 1;
    const int x_ho = static_cast<int>(x_levels) - 1;
    local.denseOuterProducts =
        (m / v) * (n / v) * kk * w_levels * x_levels;

    MatrixI64 acc(m, n);
    for (std::size_t mg = 0; mg < m / v; ++mg) {
        for (std::size_t ng = 0; ng < n / v; ++ng) {
            for (std::size_t k = 0; k < kk; ++k) {
                const bool w_comp = skip_weight && w_mask(mg, k) != 0;
                const bool x_comp = !skip_weight && x_mask(k, ng) != 0;

                for (std::size_t wl = 0; wl < w_levels; ++wl) {
                    // Skipping is legal whenever the *skipped operand's*
                    // HO slice participates: the product is then zero.
                    if (w_comp && static_cast<int>(wl) == w_ho) {
                        local.skippedOuterProducts += x_levels;
                        continue;
                    }
                    const SlicePlane &wp = w.planes[wl];
                    for (std::size_t xl = 0; xl < x_levels; ++xl) {
                        if (x_comp && static_cast<int>(xl) == x_ho) {
                            ++local.skippedOuterProducts;
                            continue;
                        }
                        const SlicePlane &xp = x.planes[xl];
                        const int shift = wp.shift + xp.shift;
                        ++local.executedOuterProducts;
                        for (int i = 0; i < v; ++i) {
                            const std::int64_t ws = wp.data(mg * v + i, k);
                            for (int j = 0; j < v; ++j) {
                                const std::int64_t xs =
                                    xp.data(k, ng * v + j);
                                acc(mg * v + i, ng * v + j) +=
                                    (ws * xs) << shift;
                            }
                        }
                    }
                }
            }
        }
    }

    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) *
                  static_cast<std::uint64_t>(v);
    local.adds = local.mults;
    // Sibia ships uncompressed operands from DRAM: bits/4 nibbles each.
    local.emaNibbles =
        (static_cast<std::uint64_t>(m) * kk * w.sourceBits +
         static_cast<std::uint64_t>(kk) * n * x.sourceBits) / 4;

    if (stats)
        *stats += local;
    return acc;
}

} // namespace panacea
