#include "core/legacy_gemm.h"

#include <array>
#include <vector>

#include "slicing/sparsity.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

double
LegacyStats::macReduction() const
{
    if (denseOuterProducts == 0 || macsPerOuterProduct <= 0.0)
        return 0.0;
    return 1.0 - static_cast<double>(mults) /
                     (static_cast<double>(denseOuterProducts) *
                      macsPerOuterProduct);
}

LegacyStats &
LegacyStats::operator+=(const LegacyStats &other)
{
    // Dense-OP-weighted blend keeps the macReduction() denominator
    // exact when merging runs with different vector lengths.
    const double d_old = static_cast<double>(denseOuterProducts);
    const double d_other = static_cast<double>(other.denseOuterProducts);
    if (d_old + d_other > 0.0)
        macsPerOuterProduct = (macsPerOuterProduct * d_old +
                               other.macsPerOuterProduct * d_other) /
                              (d_old + d_other);
    denseOuterProducts += other.denseOuterProducts;
    executedOuterProducts += other.executedOuterProducts;
    skippedOuterProducts += other.skippedOuterProducts;
    mults += other.mults;
    adds += other.adds;
    emaNibbles += other.emaNibbles;
    // Sparsities of merged records: keep the weighted blend by dense OPs
    // so model-level aggregation stays meaningful.
    double w_total = static_cast<double>(denseOuterProducts);
    if (w_total > 0.0) {
        double w_old = w_total - static_cast<double>(
            other.denseOuterProducts);
        rhoW = (rhoW * w_old + other.rhoW *
                static_cast<double>(other.denseOuterProducts)) / w_total;
        rhoX = (rhoX * w_old + other.rhoX *
                static_cast<double>(other.denseOuterProducts)) / w_total;
    }
    return *this;
}

namespace {

/** Integer counters of one parallel band (exact sums, reduced later). */
struct LegacyBandCounters
{
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
};

/**
 * Register-blocked band [mg0, mg1) of the legacy bit-slice GEMM: same
 * structure as the AQS kernel (per-tile skip list, hoisted plane/row
 * pointers, micro-tile in registers, one write-back), but with the
 * single-sided zero-vector skipping of Sibia and no compensation.
 */
/**
 * Scalar band fallback for vector lengths beyond the static micro-tile
 * bound (v > 16): the original per-element loop nest, band-partitioned
 * so it still runs under the pool.
 */
void
legacyBandScalar(const SlicedMatrix &w, const SlicedMatrix &x, int v,
                 bool skip_weight, const MatrixU8 &w_mask,
                 const MatrixU8 &x_mask_t, std::size_t mg0,
                 std::size_t mg1, MatrixI64 &acc,
                 LegacyBandCounters &counters)
{
    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const std::size_t w_ho = w_levels - 1;
    const std::size_t x_ho = x_levels - 1;

    for (std::size_t mg = mg0; mg < mg1; ++mg) {
        for (std::size_t ng = 0; ng < n / v; ++ng) {
            for (std::size_t k = 0; k < kk; ++k) {
                const bool w_comp = skip_weight && w_mask(mg, k) != 0;
                const bool x_comp = !skip_weight && x_mask_t(ng, k) != 0;
                for (std::size_t wl = 0; wl < w_levels; ++wl) {
                    if (w_comp && wl == w_ho) {
                        counters.skipped += x_levels;
                        continue;
                    }
                    const SlicePlane &wp = w.planes[wl];
                    for (std::size_t xl = 0; xl < x_levels; ++xl) {
                        if (x_comp && xl == x_ho) {
                            ++counters.skipped;
                            continue;
                        }
                        const SlicePlane &xp = x.planes[xl];
                        const int shift = wp.shift + xp.shift;
                        ++counters.executed;
                        for (int i = 0; i < v; ++i) {
                            const std::int64_t ws = wp.data(mg * v + i, k);
                            for (int j = 0; j < v; ++j) {
                                const std::int64_t xs =
                                    xp.data(k, ng * v + j);
                                acc(mg * v + i, ng * v + j) +=
                                    (ws * xs) << shift;
                            }
                        }
                    }
                }
            }
        }
    }
}

template <int VT>
void
legacyBand(const SlicedMatrix &w, const SlicedMatrix &x, int v_in,
           bool skip_weight, const MatrixU8 &w_mask,
           const MatrixU8 &x_mask_t, std::size_t mg0, std::size_t mg1,
           MatrixI64 &acc, LegacyBandCounters &counters)
{
    const int v = VT > 0 ? VT : v_in;
    constexpr int TV = VT > 0 ? VT : 16;
    panic_if(v > TV, "legacy blocked kernel supports v <= ", TV);

    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    const std::size_t n_groups = n / static_cast<std::size_t>(v);
    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const std::size_t w_ho = w_levels - 1;
    const std::size_t x_ho = x_levels - 1;

    std::vector<const Slice *> wbase(w_levels), xbase(x_levels);
    std::vector<int> wshift(w_levels), xshift(x_levels);
    for (std::size_t wl = 0; wl < w_levels; ++wl) {
        wbase[wl] = w.planes[wl].data.data().data();
        wshift[wl] = w.planes[wl].shift;
    }
    for (std::size_t xl = 0; xl < x_levels; ++xl) {
        xbase[xl] = x.planes[xl].data.data().data();
        xshift[xl] = x.planes[xl].shift;
    }

    std::vector<const Slice *> wrows(w_levels *
                                     static_cast<std::size_t>(v));
    std::array<std::int64_t, TV * TV> tile;
    std::array<std::int64_t, TV> ws;

    for (std::size_t mg = mg0; mg < mg1; ++mg) {
        const std::uint8_t *wmask =
            skip_weight ? w_mask.row(mg).data() : nullptr;
        for (std::size_t wl = 0; wl < w_levels; ++wl)
            for (int i = 0; i < v; ++i)
                wrows[wl * static_cast<std::size_t>(v) +
                      static_cast<std::size_t>(i)] =
                    wbase[wl] + (mg * static_cast<std::size_t>(v) +
                                 static_cast<std::size_t>(i)) * kk;

        for (std::size_t ng = 0; ng < n_groups; ++ng) {
            const std::uint8_t *xmask =
                skip_weight ? nullptr : x_mask_t.row(ng).data();
            const std::size_t ng_off = ng * static_cast<std::size_t>(v);
            tile.fill(0);

            for (std::size_t k = 0; k < kk; ++k) {
                const bool w_comp = wmask && wmask[k] != 0;
                const bool x_comp = xmask && xmask[k] != 0;

                for (std::size_t wl = 0; wl < w_levels; ++wl) {
                    // Skipping is legal whenever the *skipped operand's*
                    // HO slice participates: the product is then zero.
                    if (w_comp && wl == w_ho) {
                        counters.skipped += x_levels;
                        continue;
                    }
                    const std::size_t wrow0 =
                        wl * static_cast<std::size_t>(v);
                    for (int i = 0; i < v; ++i)
                        ws[static_cast<std::size_t>(i)] =
                            wrows[wrow0 + static_cast<std::size_t>(i)][k];

                    for (std::size_t xl = 0; xl < x_levels; ++xl) {
                        if (x_comp && xl == x_ho) {
                            ++counters.skipped;
                            continue;
                        }
                        const Slice *xr = xbase[xl] + k * n + ng_off;
                        const int shift = wshift[wl] + xshift[xl];
                        ++counters.executed;
                        for (int i = 0; i < v; ++i) {
                            const std::int64_t wsi =
                                ws[static_cast<std::size_t>(i)];
                            std::int64_t *t = tile.data() + i * v;
                            for (int j = 0; j < v; ++j)
                                t[j] += (wsi * xr[j]) << shift;
                        }
                    }
                }
            }

            for (int i = 0; i < v; ++i) {
                std::int64_t *arow =
                    &acc(mg * static_cast<std::size_t>(v) +
                             static_cast<std::size_t>(i),
                         ng_off);
                const std::int64_t *t = tile.data() + i * v;
                for (int j = 0; j < v; ++j)
                    arow[j] = t[j];
            }
        }
    }
}

} // namespace

MatrixI64
legacyBitsliceGemm(const SlicedMatrix &w, const SlicedMatrix &x, int v,
                   SibiaSkipSide side, LegacyStats *stats)
{
    const std::size_t m = w.rows();
    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    panic_if(x.rows() != kk, "legacy GEMM shape mismatch");
    panic_if(m % v != 0 || n % v != 0,
             "legacy GEMM needs M and N divisible by v=", v);

    const MatrixU8 w_mask = weightVectorMask(w.hoPlane().data, v);
    const MatrixU8 x_mask = activationVectorMask(x.hoPlane().data, v, 0);

    LegacyStats local;
    local.rhoW = maskDensityOfOnes(w_mask);
    local.rhoX = maskDensityOfOnes(x_mask);
    local.macsPerOuterProduct = static_cast<double>(v) * v;

    bool skip_weight;
    switch (side) {
      case SibiaSkipSide::Weight:     skip_weight = true; break;
      case SibiaSkipSide::Activation: skip_weight = false; break;
      case SibiaSkipSide::Auto:
      default:
        skip_weight = local.rhoW >= local.rhoX;
        break;
    }
    local.skippedWeightSide = skip_weight;

    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const std::size_t m_groups = m / static_cast<std::size_t>(v);
    const std::size_t n_groups = n / static_cast<std::size_t>(v);
    local.denseOuterProducts =
        m_groups * n_groups * kk * w_levels * x_levels;

    // The transposed activation mask is only dereferenced on the
    // activation-skip path.
    MatrixU8 x_mask_t;
    if (!skip_weight) {
        x_mask_t = MatrixU8(n_groups, kk);
        for (std::size_t k = 0; k < kk; ++k)
            for (std::size_t ng = 0; ng < n_groups; ++ng)
                x_mask_t(ng, k) = x_mask(k, ng);
    }

    MatrixI64 acc(m, n);

    // Parallel over m-groups (disjoint accumulator rows); the per-band
    // counters are exact integer sums, so results and statistics are
    // bit-identical for any thread count.
    const int chunks = parallelChunkCount(m_groups);
    std::vector<LegacyBandCounters> partial(
        static_cast<std::size_t>(chunks));
    parallelFor(0, m_groups, [&](std::size_t b, std::size_t e, int c) {
        LegacyBandCounters &part = partial[static_cast<std::size_t>(c)];
        if (v == 4)
            legacyBand<4>(w, x, v, skip_weight, w_mask, x_mask_t, b, e,
                          acc, part);
        else if (v <= 16)
            legacyBand<0>(w, x, v, skip_weight, w_mask, x_mask_t, b, e,
                          acc, part);
        else
            legacyBandScalar(w, x, v, skip_weight, w_mask, x_mask_t, b,
                             e, acc, part);
    });
    for (const LegacyBandCounters &part : partial) {
        local.executedOuterProducts += part.executed;
        local.skippedOuterProducts += part.skipped;
    }

    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) *
                  static_cast<std::uint64_t>(v);
    local.adds = local.mults;
    // Sibia ships uncompressed operands from DRAM: bits/4 nibbles each.
    local.emaNibbles =
        (static_cast<std::uint64_t>(m) * kk * w.sourceBits +
         static_cast<std::uint64_t>(kk) * n * x.sourceBits) / 4;

    if (stats)
        *stats += local;
    return acc;
}

} // namespace panacea
