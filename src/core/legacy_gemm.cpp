#include "core/legacy_gemm.h"

#include <array>
#include <vector>

#include "core/kernel_cost_model.h"
#include "core/operand_pack.h"
#include "core/pair_pass.h"
#include "slicing/sparsity.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

double
LegacyStats::macReduction() const
{
    if (denseOuterProducts == 0 || macsPerOuterProduct <= 0.0)
        return 0.0;
    return 1.0 - static_cast<double>(mults) /
                     (static_cast<double>(denseOuterProducts) *
                      macsPerOuterProduct);
}

LegacyStats &
LegacyStats::operator+=(const LegacyStats &other)
{
    // Dense-OP-weighted blend keeps the macReduction() denominator
    // exact when merging runs with different vector lengths.
    const double d_old = static_cast<double>(denseOuterProducts);
    const double d_other = static_cast<double>(other.denseOuterProducts);
    if (d_old + d_other > 0.0)
        macsPerOuterProduct = (macsPerOuterProduct * d_old +
                               other.macsPerOuterProduct * d_other) /
                              (d_old + d_other);
    denseOuterProducts += other.denseOuterProducts;
    executedOuterProducts += other.executedOuterProducts;
    skippedOuterProducts += other.skippedOuterProducts;
    mults += other.mults;
    adds += other.adds;
    emaNibbles += other.emaNibbles;
    // Sparsities of merged records: keep the weighted blend by dense OPs
    // so model-level aggregation stays meaningful.
    double w_total = static_cast<double>(denseOuterProducts);
    if (w_total > 0.0) {
        double w_old = w_total - static_cast<double>(
            other.denseOuterProducts);
        rhoW = (rhoW * w_old + other.rhoW *
                static_cast<double>(other.denseOuterProducts)) / w_total;
        rhoX = (rhoX * w_old + other.rhoX *
                static_cast<double>(other.denseOuterProducts)) / w_total;
    }
    return *this;
}

namespace {

/** Integer counters of one parallel band (exact sums, reduced later). */
struct LegacyBandCounters
{
    std::uint64_t executed = 0;
    std::uint64_t skipped = 0;
};

/**
 * Scalar band fallback for vector lengths beyond the static micro-tile
 * bound (v > 16) and for reduction depths beyond the int32 pair-
 * accumulator guard: the original per-element loop nest, band-
 * partitioned so it still runs under the pool.
 */
void
legacyBandScalar(const SlicedMatrix &w, const SlicedMatrix &x, int v,
                 bool skip_weight, const MatrixU8 &w_mask,
                 const MatrixU8 &x_mask_t, std::size_t mg0,
                 std::size_t mg1, MatrixI64 &acc,
                 LegacyBandCounters &counters)
{
    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const std::size_t w_ho = w_levels - 1;
    const std::size_t x_ho = x_levels - 1;

    for (std::size_t mg = mg0; mg < mg1; ++mg) {
        for (std::size_t ng = 0; ng < n / v; ++ng) {
            for (std::size_t k = 0; k < kk; ++k) {
                const bool w_comp = skip_weight && w_mask(mg, k) != 0;
                const bool x_comp = !skip_weight && x_mask_t(ng, k) != 0;
                for (std::size_t wl = 0; wl < w_levels; ++wl) {
                    if (w_comp && wl == w_ho) {
                        counters.skipped += x_levels;
                        continue;
                    }
                    const SlicePlane &wp = w.planes[wl];
                    for (std::size_t xl = 0; xl < x_levels; ++xl) {
                        if (x_comp && xl == x_ho) {
                            ++counters.skipped;
                            continue;
                        }
                        const SlicePlane &xp = x.planes[xl];
                        const int shift = wp.shift + xp.shift;
                        ++counters.executed;
                        for (int i = 0; i < v; ++i) {
                            const std::int64_t ws = wp.data(mg * v + i, k);
                            for (int j = 0; j < v; ++j) {
                                const std::int64_t xs =
                                    xp.data(k, ng * v + j);
                                acc(mg * v + i, ng * v + j) +=
                                    (ws * xs) << shift;
                            }
                        }
                    }
                }
            }
        }
    }
}

/**
 * Register-blocked band [mg0, mg1) of the legacy bit-slice GEMM: the
 * same packed-operand, skip-list-driven pair-pass structure as the AQS
 * kernel (core/pair_pass.h), but with the single-sided zero-vector
 * skipping of Sibia and no compensation. Per m-group the v weight rows
 * of every slice plane are packed into a widened int16 [k][i] tile;
 * per (mg, ng) tile one pair pass runs per (weight-plane,
 * activation-plane) combination - the weight skip list when the HO
 * weight plane participates under weight-side skipping, the activation
 * skip list when the HO activation plane participates under
 * activation-side skipping, all steps otherwise. Pair sums accumulate
 * unshifted in int32 (|product| <= 64, guarded in legacyBitsliceGemm)
 * and merge into the int64 micro-tile with their positional shift.
 * Counters fall out of the list lengths, so results and statistics are
 * bit-identical to the scalar band for any thread count or ISA level.
 */
template <int VT>
void
legacyBand(const SlicedMatrix &w, const SlicedMatrix &x, int v_in,
           bool skip_weight, const MatrixU8 &w_mask,
           const detail::SkipLists &xd, const std::int16_t *x16,
           const std::int16_t *xq, const detail::PairPassKernels &kern,
           const detail::StreamDecision &sd, std::size_t mg0,
           std::size_t mg1, MatrixI64 &acc,
           LegacyBandCounters &counters)
{
    const int v = VT > 0 ? VT : v_in;
    constexpr int TV = VT > 0 ? VT : 16;
    panic_if(v > TV, "legacy blocked kernel supports v <= ", TV);
    const std::size_t uv = static_cast<std::size_t>(v);

    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    const std::size_t n_groups = n / uv;
    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const std::size_t w_ho = w_levels - 1;
    const std::size_t x_ho = x_levels - 1;
    const std::uint64_t dense_per_tile =
        static_cast<std::uint64_t>(kk) * w_levels * x_levels;

    std::vector<const std::int16_t *> xbase(x_levels);
    std::vector<int> xshift(x_levels);
    for (std::size_t xl = 0; xl < x_levels; ++xl) {
        xbase[xl] = x16 + xl * kk * n;
        xshift[xl] = x.planes[xl].shift;
    }

    // Streaming fast path (SSE2+ generic-v, AVX2+ for v = 4): dense
    // masked passes over the pre-interleaved operands replace skip-list
    // gathers whenever the stream decision `sd` (resolved once per
    // GEMM call; see core/kernel_cost_model.h) predicts the stream
    // cheaper; stats always come from the list lengths, so the choice
    // never changes results or counters.
    const bool stream_ok =
        xq != nullptr && detail::streamKernelsRunnable(kern, v);
    const std::size_t kkp = detail::pairCount(kk);
    const std::size_t pw = 2 * uv;

    // Per-band scratch, allocated once and reused for every m-group.
    std::vector<std::int16_t> wpack(w_levels * kk * uv);
    std::vector<std::int16_t> wq, wqm;
    std::vector<std::uint32_t> wd;
    wd.reserve(kk);
    std::array<std::int32_t, TV * TV> pacc;
    std::array<std::int64_t, TV * TV> tile;

    for (std::size_t mg = mg0; mg < mg1; ++mg) {
        // Weight-side skip list: dense reduction steps for this band.
        wd.clear();
        bool wd_full = true;
        if (skip_weight) {
            const std::uint8_t *wmask = w_mask.row(mg).data();
            for (std::size_t k = 0; k < kk; ++k)
                if (wmask[k] == 0)
                    wd.push_back(static_cast<std::uint32_t>(k));
            wd_full = wd.size() == kk;
        }

        // Pack the band's weight rows, widened: wpack[(wl*kk + k)*v + i].
        for (std::size_t wl = 0; wl < w_levels; ++wl) {
            const Slice *base = w.planes[wl].data.data().data();
            std::int16_t *dst = wpack.data() + wl * kk * uv;
            for (int i = 0; i < v; ++i) {
                const Slice *src =
                    base + (mg * uv + static_cast<std::size_t>(i)) * kk;
                for (std::size_t k = 0; k < kk; ++k)
                    dst[k * uv + static_cast<std::size_t>(i)] = src[k];
            }
        }

        // Paired-stream weight operands (unmasked + masked HO when a
        // streamed HO_w pass could read it; see operand_pack.h).
        if (stream_ok)
            detail::packStreamWeightOperands(
                w, mg, v,
                skip_weight ? w_mask.row(mg).data() : nullptr,
                skip_weight ? wd.size() : kk, sd, wq, wqm);

        for (std::size_t ng = 0; ng < n_groups; ++ng) {
            const std::uint32_t *xlist =
                skip_weight ? nullptr : xd.list(ng);
            const std::size_t nxd = skip_weight ? kk : xd.count(ng);
            const bool xd_full = nxd == kk;
            const std::size_t ng_off = ng * uv;

            tile.fill(0);
            std::uint64_t executed = 0;

            for (std::size_t wl = 0; wl < w_levels; ++wl) {
                const std::int16_t *wp = wpack.data() + wl * kk * uv;
                const int w_shift = w.planes[wl].shift;
                for (std::size_t xl = 0; xl < x_levels; ++xl) {
                    // Skipping is legal whenever the *skipped operand's*
                    // HO slice participates: the product is then zero.
                    const std::uint32_t *ks;
                    std::size_t nk;
                    bool identity;
                    if (skip_weight && wl == w_ho) {
                        ks = wd_full ? nullptr : wd.data();
                        nk = wd_full ? kk : wd.size();
                        identity = wd_full;
                    } else if (!skip_weight && xl == x_ho) {
                        ks = xd_full ? nullptr : xlist;
                        nk = nxd;
                        identity = xd_full;
                    } else {
                        ks = nullptr;
                        nk = kk;
                        identity = true;
                    }

                    if (stream_ok && sd.profitable(nk, kk)) {
                        const std::int16_t *wqp =
                            (skip_weight && wl == w_ho && !wd_full)
                                ? wqm.data()
                                : wq.data() + wl * kkp * pw;
                        const std::int16_t *xqp =
                            xq + (xl * n_groups + ng) * kkp * pw;
                        if constexpr (VT == 4)
                            kern.stream4(wqp, xqp, kkp, pacc.data());
                        else
                            kern.streamGeneric(wqp, xqp, kkp, v,
                                               pacc.data());
                    } else if constexpr (VT == 4) {
                        kern.pass4(wp, xbase[xl], n, ng_off, ks, nk,
                                   identity, pacc.data());
                    } else {
                        kern.passGeneric(wp, xbase[xl], n, ng_off, ks,
                                         nk, identity, v, pacc.data());
                    }
                    executed += nk;

                    const int shift = w_shift + xshift[xl];
                    for (int e = 0; e < v * v; ++e)
                        tile[static_cast<std::size_t>(e)] +=
                            static_cast<std::int64_t>(
                                pacc[static_cast<std::size_t>(e)])
                            << shift;
                }
            }

            counters.executed += executed;
            counters.skipped += dense_per_tile - executed;

            for (int i = 0; i < v; ++i) {
                std::int64_t *arow =
                    &acc(mg * uv + static_cast<std::size_t>(i), ng_off);
                const std::int64_t *t = tile.data() + i * v;
                for (int j = 0; j < v; ++j)
                    arow[j] = t[j];
            }
        }
    }
}

} // namespace

MatrixI64
legacyBitsliceGemm(const SlicedMatrix &w, const SlicedMatrix &x, int v,
                   SibiaSkipSide side, LegacyStats *stats)
{
    const std::size_t m = w.rows();
    const std::size_t kk = w.cols();
    const std::size_t n = x.cols();
    panic_if(x.rows() != kk, "legacy GEMM shape mismatch");
    panic_if(m % v != 0 || n % v != 0,
             "legacy GEMM needs M and N divisible by v=", v);

    const MatrixU8 w_mask = weightVectorMask(w.hoPlane().data, v);
    const MatrixU8 x_mask = activationVectorMask(x.hoPlane().data, v, 0);

    LegacyStats local;
    local.rhoW = maskDensityOfOnes(w_mask);
    local.rhoX = maskDensityOfOnes(x_mask);
    local.macsPerOuterProduct = static_cast<double>(v) * v;

    bool skip_weight;
    switch (side) {
      case SibiaSkipSide::Weight:     skip_weight = true; break;
      case SibiaSkipSide::Activation: skip_weight = false; break;
      case SibiaSkipSide::Auto:
      default:
        skip_weight = local.rhoW >= local.rhoX;
        break;
    }
    local.skippedWeightSide = skip_weight;

    const std::size_t w_levels = w.levels();
    const std::size_t x_levels = x.levels();
    const std::size_t m_groups = m / static_cast<std::size_t>(v);
    const std::size_t n_groups = n / static_cast<std::size_t>(v);
    local.denseOuterProducts =
        m_groups * n_groups * kk * w_levels * x_levels;

    MatrixI64 acc(m, n);

    // The int32 pair accumulators are exact while K * max|product|
    // stays below 2^31 (|slice product| <= 8 * 8); beyond that, and
    // beyond the static micro-tile bound, the scalar band (int64
    // accumulation, identical counters) takes over.
    const bool blocked = v <= 16 && kk < (std::size_t{1} << 25);

    // Operands of the blocked path: activation-side skip lists, the
    // int16 widened activation planes, and the ISA-dispatched
    // micro-kernel row (see core/pair_pass.h).
    detail::SkipLists xd;
    std::vector<std::int16_t> x16;
    if (blocked) {
        if (!skip_weight)
            xd = detail::buildSkipLists(x_mask);
        x16 = detail::widenSlicePlanes(x);
    }
    const detail::PairPassKernels &kern =
        detail::pairPassKernels(activeIsaLevel());

    // Stream-vs-gather decision for this call, resolved once like the
    // kernel row above (see core/kernel_cost_model.h).
    const detail::StreamDecision sd = detail::streamDecision(
        kern.level, v == 4 ? detail::KernelFamily::Pass4
                           : detail::KernelFamily::Generic);

    // Paired-stream activation planes for the streaming passes (v = 4
    // from AVX2 up, generic-v from SSE2 up); the HO plane is pre-masked
    // only under activation-side skipping. Skipped outright when the
    // policy forces gathers.
    std::vector<std::int16_t> xq;
    const bool have_stream =
        sd.policy != StreamPolicy::Gather &&
        detail::streamKernelsRunnable(kern, v);
    if (blocked && have_stream)
        xq = detail::pairedSlicePlanes(x, v,
                                       skip_weight ? nullptr : &x_mask);

    // The transposed activation mask is only dereferenced by the
    // scalar fallback band on the activation-skip path.
    MatrixU8 x_mask_t;
    if (!blocked && !skip_weight) {
        x_mask_t = MatrixU8(n_groups, kk);
        for (std::size_t k = 0; k < kk; ++k)
            for (std::size_t ng = 0; ng < n_groups; ++ng)
                x_mask_t(ng, k) = x_mask(k, ng);
    }

    // Parallel over m-groups (disjoint accumulator rows); the per-band
    // counters are exact integer sums, so results and statistics are
    // bit-identical for any thread count.
    const int chunks = parallelChunkCount(m_groups);
    std::vector<LegacyBandCounters> partial(
        static_cast<std::size_t>(chunks));
    parallelFor(0, m_groups, [&](std::size_t b, std::size_t e, int c) {
        LegacyBandCounters &part = partial[static_cast<std::size_t>(c)];
        if (!blocked)
            legacyBandScalar(w, x, v, skip_weight, w_mask, x_mask_t, b,
                             e, acc, part);
        else if (v == 4)
            legacyBand<4>(w, x, v, skip_weight, w_mask, xd, x16.data(),
                          xq.empty() ? nullptr : xq.data(), kern, sd, b,
                          e, acc, part);
        else
            legacyBand<0>(w, x, v, skip_weight, w_mask, xd, x16.data(),
                          xq.empty() ? nullptr : xq.data(), kern, sd, b,
                          e, acc, part);
    });
    for (const LegacyBandCounters &part : partial) {
        local.executedOuterProducts += part.executed;
        local.skippedOuterProducts += part.skipped;
    }

    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) *
                  static_cast<std::uint64_t>(v);
    local.adds = local.mults;
    // Sibia ships uncompressed operands from DRAM: bits/4 nibbles each.
    local.emaNibbles =
        (static_cast<std::uint64_t>(m) * kk * w.sourceBits +
         static_cast<std::uint64_t>(kk) * n * x.sourceBits) / 4;

    if (stats)
        *stats += local;
    return acc;
}

} // namespace panacea
