/**
 * @file
 * AVX2 pair-pass micro-kernels. This translation unit is the only one
 * compiled with -mavx2 (gated on compiler support; see CMakeLists.txt),
 * and its symbols are only reachable through the dispatch table after
 * a cpuid check, so the binary stays runnable on SSE2-only hosts.
 */

#include "core/pair_pass.h"

#if defined(PANACEA_HAVE_AVX2_KERNELS)

#include <immintrin.h>

namespace panacea {
namespace detail {

/**
 * v = 4 pair pass, 256-bit: every iteration retires FOUR reduction
 * steps with four vpmaddwd ops (64 MACs). The two 128-bit lanes carry
 * the interleaved operands of steps (k0,k1) and (k2,k3); the per-lane
 * dword shuffle broadcasts one output row's weight pairs, so each
 * vpmaddwd lane is a two-step partial dot product and the final
 * cross-lane add folds the four steps together. Exact int32 arithmetic,
 * bit-identical to the scalar path.
 */
void
pairPass4Avx2(const std::int16_t *wp, const std::int16_t *xp,
              std::size_t n, std::size_t ng_off, const std::uint32_t *ks,
              std::size_t nk, bool identity, std::int32_t *pacc)
{
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    std::size_t t = 0;
    for (; t + 4 <= nk; t += 4) {
        const std::size_t k0 = identity ? t : ks[t];
        const std::size_t k1 = identity ? t + 1 : ks[t + 1];
        const std::size_t k2 = identity ? t + 2 : ks[t + 2];
        const std::size_t k3 = identity ? t + 3 : ks[t + 3];
        const __m128i xlo = _mm_unpacklo_epi16(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                xp + k0 * n + ng_off)),
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                xp + k1 * n + ng_off)));
        const __m128i xhi = _mm_unpacklo_epi16(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                xp + k2 * n + ng_off)),
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(
                xp + k3 * n + ng_off)));
        const __m256i vb = _mm256_set_m128i(xhi, xlo);
        const __m128i wlo = _mm_unpacklo_epi16(
            _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(wp + k0 * 4)),
            _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(wp + k1 * 4)));
        const __m128i whi = _mm_unpacklo_epi16(
            _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(wp + k2 * 4)),
            _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(wp + k3 * 4)));
        const __m256i wab = _mm256_set_m128i(whi, wlo);
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0x00), vb));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0x55), vb));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0xAA), vb));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0xFF), vb));
    }
    const auto fold = [](__m256i a) {
        return _mm_add_epi32(_mm256_castsi256_si128(a),
                             _mm256_extracti128_si256(a, 1));
    };
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 0), fold(acc0));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 4), fold(acc1));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 8), fold(acc2));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 12), fold(acc3));
    for (; t < nk; ++t) {
        const std::size_t k = identity ? t : ks[t];
        const std::int16_t *wv = wp + k * 4;
        const std::int16_t *xr = xp + k * n + ng_off;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                pacc[i * 4 + j] += static_cast<std::int32_t>(wv[i]) *
                                   static_cast<std::int32_t>(xr[j]);
    }
}

/**
 * Streaming v = 4 pair pass, 256-bit: operands arrive pre-interleaved
 * (see PairStream4Fn in core/pair_pass.h), so every iteration is two
 * 32-byte loads plus four shuffle/vpmaddwd/add triplets retiring FOUR
 * reduction steps - no per-step address computation, interleaving or
 * lane inserts. Exact int32 arithmetic, bit-identical to the gather
 * kernels over the same dense steps.
 */
void
pairStream4Avx2(const std::int16_t *wq, const std::int16_t *xq,
                std::size_t pairs, std::int32_t *pacc)
{
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    std::size_t p = 0;
    for (; p + 2 <= pairs; p += 2) {
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(xq + p * 8));
        const __m256i wab = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(wq + p * 8));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0x00), vb));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0x55), vb));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0xAA), vb));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(_mm256_shuffle_epi32(wab, 0xFF), vb));
    }
    const auto fold = [](__m256i a) {
        return _mm_add_epi32(_mm256_castsi256_si128(a),
                             _mm256_extracti128_si256(a, 1));
    };
    __m128i r0 = fold(acc0);
    __m128i r1 = fold(acc1);
    __m128i r2 = fold(acc2);
    __m128i r3 = fold(acc3);
    if (p < pairs) { // odd trailing pair: one 128-bit step
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(xq + p * 8));
        const __m128i wab = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(wq + p * 8));
        r0 = _mm_add_epi32(
            r0, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0x00), vb));
        r1 = _mm_add_epi32(
            r1, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0x55), vb));
        r2 = _mm_add_epi32(
            r2, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0xAA), vb));
        r3 = _mm_add_epi32(
            r3, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0xFF), vb));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 0), r0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 4), r1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 8), r2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 12), r3);
}

/**
 * Runtime-v pair pass, 256-bit: per reduction step the activation row
 * is widened to int32 once, then each output row accumulates
 * broadcast(w_i) * x with vpmulld over 8-wide (then 4-wide) column
 * chunks and a scalar tail. All loads/stores stay inside the v-element
 * row (chunk starts are bounded by v), and the arithmetic is exact
 * int32, so results match the scalar kernel bit-for-bit.
 */
void
pairPassGenericAvx2(const std::int16_t *wp, const std::int16_t *xp,
                    std::size_t n, std::size_t ng_off,
                    const std::uint32_t *ks, std::size_t nk,
                    bool identity, int v, std::int32_t *pacc)
{
    for (int e = 0; e < v * v; ++e)
        pacc[e] = 0;
    const int j8 = v & ~7; // widest multiple-of-8 prefix of the row
    const int j4 = v & ~3;
    const std::size_t uv = static_cast<std::size_t>(v);
    __m256i x8[2];
    for (std::size_t t = 0; t < nk; ++t) {
        const std::size_t k = identity ? t : ks[t];
        const std::int16_t *wv = wp + k * uv;
        const std::int16_t *xr = xp + k * n + ng_off;
        for (int j = 0; j < j8; j += 8)
            x8[j >> 3] = _mm256_cvtepi16_epi32(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(xr + j)));
        __m128i x4 = _mm_setzero_si128();
        if (j4 > j8)
            x4 = _mm_cvtepi16_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(xr + j8)));
        for (int i = 0; i < v; ++i) {
            const std::int32_t wsi = wv[i];
            std::int32_t *p = pacc + i * v;
            const __m256i wb = _mm256_set1_epi32(wsi);
            for (int j = 0; j < j8; j += 8) {
                __m256i acc = _mm256_loadu_si256(
                    reinterpret_cast<__m256i *>(p + j));
                acc = _mm256_add_epi32(
                    acc, _mm256_mullo_epi32(wb, x8[j >> 3]));
                _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + j),
                                    acc);
            }
            if (j4 > j8) {
                __m128i acc = _mm_loadu_si128(
                    reinterpret_cast<__m128i *>(p + j8));
                acc = _mm_add_epi32(
                    acc,
                    _mm_mullo_epi32(_mm256_castsi256_si128(wb), x4));
                _mm_storeu_si128(reinterpret_cast<__m128i *>(p + j8),
                                 acc);
            }
            for (int j = j4; j < v; ++j)
                p[j] += wsi * static_cast<std::int32_t>(xr[j]);
        }
    }
}

/**
 * Generic-v streaming pair pass, 256-bit: the runtime-v counterpart of
 * pairStream4Avx2 over the same pre-interleaved 2v-wide paired layout.
 * Per output row an 8-column accumulator block stays in one ymm
 * register across all step pairs; each iteration broadcasts the row's
 * (step, step+1) weight pair and retires TWO reduction steps for eight
 * columns with one vpmaddwd. Narrower column remainders fall to the
 * 128-bit and scalar tails. Exact int32 arithmetic, bit-identical to
 * the gather kernels over the same dense steps.
 */
void
pairStreamGenericAvx2(const std::int16_t *wq, const std::int16_t *xq,
                      std::size_t pairs, int v, std::int32_t *pacc)
{
    const std::size_t pw = 2 * static_cast<std::size_t>(v);
    const int j8 = v & ~7; // widest multiple-of-8 prefix of the columns
    const int j4 = v & ~3;
    for (int i = 0; i < v; ++i) {
        std::int32_t *prow = pacc + i * v;
        for (int j = 0; j < j8; j += 8) {
            __m256i acc = _mm256_setzero_si256();
            for (std::size_t p = 0; p < pairs; ++p) {
                std::int32_t wpair;
                __builtin_memcpy(&wpair, wq + p * pw + 2 * i,
                                 sizeof wpair);
                const __m256i xb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(xq + p * pw +
                                                      2 * j));
                acc = _mm256_add_epi32(
                    acc,
                    _mm256_madd_epi16(_mm256_set1_epi32(wpair), xb));
            }
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(prow + j),
                                acc);
        }
        if (j4 > j8) {
            __m128i acc = _mm_setzero_si128();
            for (std::size_t p = 0; p < pairs; ++p) {
                std::int32_t wpair;
                __builtin_memcpy(&wpair, wq + p * pw + 2 * i,
                                 sizeof wpair);
                const __m128i xb = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(xq + p * pw +
                                                      2 * j8));
                acc = _mm_add_epi32(
                    acc, _mm_madd_epi16(_mm_set1_epi32(wpair), xb));
            }
            _mm_storeu_si128(reinterpret_cast<__m128i *>(prow + j8),
                             acc);
        }
        for (int j = j4; j < v; ++j) {
            std::int32_t sum = 0;
            for (std::size_t p = 0; p < pairs; ++p) {
                const std::int16_t *wr = wq + p * pw + 2 * i;
                const std::int16_t *xr = xq + p * pw + 2 * j;
                sum += static_cast<std::int32_t>(wr[0]) * xr[0] +
                       static_cast<std::int32_t>(wr[1]) * xr[1];
            }
            prow[j] = sum;
        }
    }
}

} // namespace detail
} // namespace panacea

#endif // PANACEA_HAVE_AVX2_KERNELS
