/**
 * @file
 * The Asymmetrically-Quantized bit-Slice GEMM (AQS-GEMM), the paper's
 * primary contribution (§III-B, Fig. 7, Eq. (4)-(6)).
 *
 * Weights are SBR-sliced symmetric codes; activations are straightforward
 * or DBS-sliced asymmetric codes. HO slice-vectors are compressed
 * (all-zero weight vectors, all-r activation vectors with r = HO(zp'))
 * and their outer products skipped. Exactness is restored by the
 * compensation term of Eq. (6):
 *
 *   (W_HO + W_LO) x_HO
 *     = (W_HO + W_LO) xU_HO - r (W_HO + W_LO) JU + b',
 *   b' = r (W_HO + W_LO) 1_{KxN}   (folded into the bias offline)
 *
 * which touches only weight columns already loaded for the uncompressed
 * work, eliminating the extra memory accesses of the naive Eq. (5) form.
 *
 * The engine is functional (it produces the bit-exact integer GEMM
 * result) and fully counted: every multiply, add and nibble of traffic
 * is tallied so Table I and the energy model can be validated against it.
 *
 * Determinism guarantees (enforced by tests/test_kernel_parity.cpp):
 * aqsGemm() returns results AND statistics bit-identical to
 * aqsGemmReference() for every thread count (PANACEA_THREADS) and every
 * micro-kernel ISA level (PANACEA_ISA; see util/cpu_features.h and the
 * dispatch table in core/pair_pass.h). Threading and vectorization only
 * change throughput, never a single output or counter bit.
 */

#ifndef PANACEA_CORE_AQS_GEMM_H
#define PANACEA_CORE_AQS_GEMM_H

#include <cstdint>
#include <span>
#include <vector>

#include "slicing/rle.h"
#include "slicing/slice_tensor.h"
#include "util/matrix.h"

namespace panacea {

/** Which activation HO vectors the engine may skip. */
enum class ActSkipMode
{
    RValued,   ///< skip all-r vectors with compensation (AQS-GEMM)
    ZeroOnly,  ///< skip only all-zero vectors (previous bit-slice GEMMs)
    None,      ///< dense activation processing
};

/** @return printable name of a skip mode. */
const char *toString(ActSkipMode mode);

/** Static configuration of an AQS-GEMM instance. */
struct AqsConfig
{
    int v = 4;               ///< slice-vector length
    int rleIndexBits = 4;    ///< RLE skip-index width
    ActSkipMode actSkip = ActSkipMode::RValued;
    bool useEq6 = true;      ///< weight-reusing compensation (Eq. (6))
    bool skipWeightVectors = true; ///< compress all-zero weight HO vectors
};

/** Prepared (sliced + compressed) weight operand. */
struct WeightOperand
{
    SlicedMatrix sliced;            ///< SBR planes, low to high
    MatrixI32 totalCodes;           ///< reconstructed codes (for CS reuse)
    MatrixU8 hoMask;                ///< (M/v) x K, 1 = compressed vector
    std::vector<RleStream> streams; ///< HO plane RLE, one per row band
};

/** Prepared (sliced + compressed) activation operand. */
struct ActivationOperand
{
    SlicedMatrix sliced;            ///< unsigned planes, low to high
    Slice r = 0;                    ///< frequent HO slice (skip value)
    MatrixU8 hoMask;                ///< K x (N/v), 1 = compressed vector
    std::vector<RleStream> streams; ///< HO plane RLE, one per column band
    /**
     * int16 copies of the slice planes ([level][k][n]), precomputed by
     * prepareActivations* for the blocked kernel's 16-bit pair passes.
     * Optional: aqsGemm widens on the fly when absent (hand-built
     * operands). Invariant: derived from `sliced` — a caller that
     * mutates `sliced` in place afterwards must clear() this cache so
     * the kernel re-widens, or the engines diverge silently.
     */
    std::vector<std::int16_t> widenedPlanes;
    /**
     * Pre-interleaved step-pair copies of the slice planes, blocked per
     * column group, with compressed HO vectors stored as zeros (see
     * detail::pairedSlicePlanes): the operand of the AVX2/AVX-512
     * streaming pair passes. Optional, same invariant as
     * `widenedPlanes`: derived from `sliced` + `hoMask`; clear() after
     * mutating either, or the engines diverge silently.
     */
    std::vector<std::int16_t> pairedPlanes;
};

/** Execution statistics of one AQS-GEMM call. */
struct AqsStats
{
    std::uint64_t denseOuterProducts = 0; ///< dense bit-slice OP count
    std::uint64_t executedOuterProducts = 0;
    std::uint64_t skippedOuterProducts = 0;
    std::uint64_t mults = 0;        ///< executed 4b x 4b multiplies
    std::uint64_t adds = 0;         ///< executed accumulator adds
    std::uint64_t compMults = 0;    ///< compensation outer-product mults
    std::uint64_t compAdds = 0;     ///< compensation accumulations
    std::uint64_t compExtraEmaNibbles = 0; ///< Eq. (5) reload traffic
    std::uint64_t wNibbles = 0;     ///< weight slice traffic (compressed)
    std::uint64_t xNibbles = 0;     ///< activation slice traffic
    std::uint64_t wIndexBits = 0;   ///< weight RLE index traffic
    std::uint64_t xIndexBits = 0;   ///< activation RLE index traffic
    std::uint64_t denseNibbles = 0; ///< uncompressed traffic baseline

    /**
     * MACs per dense outer product (v * v), set by the engines from the
     * configuration they ran with. Merging records blends the value
     * weighted by dense outer products, so macReduction() stays correct
     * even when aggregating layers that ran with different v.
     */
    double macsPerOuterProduct = 16.0;

    /** Fraction of dense bit-slice MACs eliminated. */
    double macReduction() const;

    /** Total multiplies including compensation. */
    std::uint64_t totalMults() const { return mults + compMults; }
    /** Total adds including compensation. */
    std::uint64_t totalAdds() const { return adds + compAdds; }
    /** Total slice traffic in nibbles, including index overhead. */
    std::uint64_t
    totalTrafficNibbles() const
    {
        return wNibbles + xNibbles + (wIndexBits + xIndexBits + 3) / 4 +
               compExtraEmaNibbles;
    }

    /** Accumulate another stats record into this one. */
    AqsStats &operator+=(const AqsStats &other);

    /**
     * Add only the integer counters of another record (everything
     * except the floating macsPerOuterProduct blend). The single
     * field list both operator+= and order-independent folds (the
     * serving engine's aggregate) build on.
     */
    AqsStats &addCounters(const AqsStats &other);
};

/**
 * Prepare a weight operand: SBR-slice the codes, build the HO
 * compression mask and RLE streams.
 *
 * @param codes symmetric weight codes, (3n+4)-bit
 * @param n     number of LO slices
 * @param cfg   engine configuration
 */
WeightOperand prepareWeights(const MatrixI32 &codes, int n,
                             const AqsConfig &cfg);

/**
 * Prepare an activation operand with straightforward slicing.
 *
 * @param codes unsigned activation codes, (4k+4)-bit
 * @param k     number of LO slices
 * @param zp    the (possibly ZPM-manipulated) zero point; the skip value
 *              is its HO slice r = zp >> 4k under RValued skipping
 */
ActivationOperand prepareActivations(const MatrixI32 &codes, int k,
                                     std::int32_t zp, const AqsConfig &cfg);

/**
 * Prepare an 8-bit activation operand with the DBS slicing rule.
 *
 * @param lo_bits the DBS LO width l in {4,5,6}
 * @param r       the frequent HO slice r'' from the type-based ZPM
 */
ActivationOperand prepareActivationsDbs(const MatrixI32 &codes, int lo_bits,
                                        Slice r, const AqsConfig &cfg);

/**
 * Execute the AQS-GEMM: returns the bit-exact integer accumulator
 * W_codes * x_codes (for DBS, over the LSB-masked effective activation
 * codes). Statistics are accumulated into *stats when non-null.
 *
 * Preconditions: operands prepared with the same cfg.v (M and N must be
 * divisible by v); W is M x K, x is K x N. The blocked kernel runs for
 * v <= 16 and K < 2^22 (the int32 pair-accumulator exactness domain)
 * and falls back to the scalar reference outside it. Parallel over the
 * shared pool and vectorized per the active ISA level — bit-identical
 * to aqsGemmReference() in both results and statistics either way
 * (parity-checked in tests/test_kernel_parity.cpp).
 */
MatrixI64 aqsGemm(const WeightOperand &w, const ActivationOperand &x,
                  const AqsConfig &cfg, AqsStats *stats = nullptr);

/**
 * Concatenate prepared activation operands along the column (token)
 * axis: the batch-assembly primitive of the serving runtime
 * (src/serve/). Every structure of an ActivationOperand is
 * column-blocked (slice planes, HO mask, per-column-band RLE streams,
 * widened and paired kernel caches), so concatenation is pure block
 * copies - no re-slicing, no re-encoding - and the result is
 * byte-identical to preparing the concatenated codes directly.
 *
 * Preconditions: all operands prepared by the same layer/configuration
 * (same K, plane count/shifts, skip value r, column counts divisible by
 * cfg.v). The widened/paired kernel caches are concatenated only when
 * every source carries them (they are optional per the
 * ActivationOperand contract); otherwise the result's caches stay
 * empty and the engine rebuilds on demand.
 *
 * Combined with aqsGemm()'s column-slice determinism - each v-wide
 * output column group depends only on its own activation columns - a
 * batched GEMM over the concatenated operand returns, in request r's
 * columns, exactly the bits a solo run of request r would
 * (tests/test_operand_reuse.cpp).
 */
ActivationOperand
concatActivationOperands(std::span<const ActivationOperand *const> ops,
                         const AqsConfig &cfg);

/**
 * Counting-only twin of aqsGemm() restricted to the output column
 * groups [ng_begin, ng_end): returns the exact statistics a GEMM over
 * just those activation columns would record, without executing any
 * arithmetic. Statistics depend only on the HO masks and RLE streams
 * (never on operand values), so this is O(M/v * K + K * groups) mask
 * counting instead of a GEMM.
 *
 * Invariants (enforced by tests/test_operand_reuse.cpp):
 *  - full range: bit-equal to the stats aqsGemm()/aqsGemmReference()
 *    accumulate for the same operands;
 *  - sub-range of a concatenated operand: bit-equal to the solo stats
 *    of the source operand occupying those columns (weight-side and
 *    per-call traffic terms count per call, exactly like a solo run).
 * The serving engine uses this to attribute per-request statistics out
 * of one batched GEMM call.
 *
 * ng_end is clamped to N/v; the default (-1) covers the full operand.
 */
AqsStats aqsCountStats(const WeightOperand &w, const ActivationOperand &x,
                       const AqsConfig &cfg, std::size_t ng_begin = 0,
                       std::size_t ng_end = static_cast<std::size_t>(-1));

/**
 * Batched aqsCountStats(): one record per consecutive column-group
 * range [group_offsets[i], group_offsets[i+1]). The weight-side mask
 * scan (the O(M/v * K) part) runs once and is shared across all
 * ranges, so attributing per-request statistics over an R-wide batch
 * costs one weight scan plus R activation-range scans. Each record is
 * bit-equal to aqsCountStats() over the same range.
 */
std::vector<AqsStats>
aqsCountStatsBatch(const WeightOperand &w, const ActivationOperand &x,
                   const AqsConfig &cfg,
                   std::span<const std::size_t> group_offsets);

/**
 * The weight-side summary the counting entry points derive from an HO
 * compression mask: total dense (uncompressed) steps over all m-bands,
 * and the per-step column density the HO_w x HO_x intersection term
 * reads. It depends only on the prepared WeightOperand and v - never
 * on any activation - so a long-lived layer (the serving runtime's
 * ServedModel) computes it once and every micro-batch reuses it
 * instead of re-scanning the O(M/v * K) mask per call.
 */
struct WeightCountingCache
{
    std::uint64_t wdSum = 0;            ///< dense steps over all m-bands
    std::vector<std::uint32_t> wcol;    ///< per step k: dense m-band count
};

/** Scan w.hoMask once; see WeightCountingCache. */
WeightCountingCache buildWeightCountingCache(const WeightOperand &w, int v);

/**
 * aqsCountStats() with a precomputed weight-side scan: bit-equal to the
 * scanning overload for a cache built from the same operand and v
 * (enforced by tests/test_operand_reuse.cpp).
 */
AqsStats aqsCountStats(const WeightOperand &w, const ActivationOperand &x,
                       const AqsConfig &cfg,
                       const WeightCountingCache &wcache,
                       std::size_t ng_begin = 0,
                       std::size_t ng_end = static_cast<std::size_t>(-1));

/** aqsCountStatsBatch() with a precomputed weight-side scan. */
std::vector<AqsStats>
aqsCountStatsBatch(const WeightOperand &w, const ActivationOperand &x,
                   const AqsConfig &cfg,
                   const WeightCountingCache &wcache,
                   std::span<const std::size_t> group_offsets);

/**
 * Scalar reference implementation of the AQS-GEMM: the original 7-deep
 * loop nest with per-element indexing, single-threaded. Retained as the
 * ground truth for the blocked/parallel kernel - aqsGemm() must match it
 * bit-for-bit (accumulator and statistics) for every configuration - and
 * as the "old kernel" side of bench_kernels.
 */
MatrixI64 aqsGemmReference(const WeightOperand &w,
                           const ActivationOperand &x, const AqsConfig &cfg,
                           AqsStats *stats = nullptr);

} // namespace panacea

#endif // PANACEA_CORE_AQS_GEMM_H
