/**
 * @file
 * Scalar and SSE2 pair-pass micro-kernels plus the ISA-dispatch table.
 * The AVX2/AVX-512/VNNI variants live in their own translation units
 * (pair_pass_avx2.cpp, pair_pass_avx512.cpp, pair_pass_vnni.cpp) so
 * only those files are compiled with the wider ISA flags; this file stays at the build's
 * baseline ISA and is always safe to execute.
 */

#include "core/pair_pass.h"

#include <array>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace panacea {
namespace detail {

void
pairPassGenericScalar(const std::int16_t *wp, const std::int16_t *xp,
                      std::size_t n, std::size_t ng_off,
                      const std::uint32_t *ks, std::size_t nk,
                      bool identity, int v, std::int32_t *pacc)
{
    for (int e = 0; e < v * v; ++e)
        pacc[e] = 0;
    for (std::size_t t = 0; t < nk; ++t) {
        const std::size_t k = identity ? t : ks[t];
        const std::int16_t *wv = wp + k * static_cast<std::size_t>(v);
        const std::int16_t *xr = xp + k * n + ng_off;
        for (int i = 0; i < v; ++i) {
            const std::int32_t wsi = wv[i];
            std::int32_t *p = pacc + i * v;
            for (int j = 0; j < v; ++j)
                p[j] += wsi * static_cast<std::int32_t>(xr[j]);
        }
    }
}

void
pairPass4Scalar(const std::int16_t *wp, const std::int16_t *xp,
                std::size_t n, std::size_t ng_off,
                const std::uint32_t *ks, std::size_t nk, bool identity,
                std::int32_t *pacc)
{
    pairPassGenericScalar(wp, xp, n, ng_off, ks, nk, identity, 4, pacc);
}

#if defined(__SSE2__)

/**
 * v = 4 pair pass: the 4x4 int32 micro-tile lives in four xmm
 * accumulators; every iteration retires TWO reduction steps with four
 * pmaddwd ops (32 MACs). Interleaving the two steps' operands
 * (punpcklwd) makes each pmaddwd lane the two-step partial dot product
 * of one (i, j) output element - exact int32 arithmetic, identical to
 * the scalar path.
 */
void
pairPass4Sse2(const std::int16_t *wp, const std::int16_t *xp,
              std::size_t n, std::size_t ng_off, const std::uint32_t *ks,
              std::size_t nk, bool identity, std::int32_t *pacc)
{
    __m128i acc0 = _mm_setzero_si128();
    __m128i acc1 = _mm_setzero_si128();
    __m128i acc2 = _mm_setzero_si128();
    __m128i acc3 = _mm_setzero_si128();
    std::size_t t = 0;
    for (; t + 2 <= nk; t += 2) {
        const std::size_t k0 = identity ? t : ks[t];
        const std::size_t k1 = identity ? t + 1 : ks[t + 1];
        const __m128i xr0 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(xp + k0 * n + ng_off));
        const __m128i xr1 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(xp + k1 * n + ng_off));
        const __m128i vb = _mm_unpacklo_epi16(xr0, xr1);
        const __m128i wv0 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(wp + k0 * 4));
        const __m128i wv1 = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(wp + k1 * 4));
        const __m128i wab = _mm_unpacklo_epi16(wv0, wv1);
        acc0 = _mm_add_epi32(
            acc0, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0x00), vb));
        acc1 = _mm_add_epi32(
            acc1, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0x55), vb));
        acc2 = _mm_add_epi32(
            acc2, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0xAA), vb));
        acc3 = _mm_add_epi32(
            acc3, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0xFF), vb));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 0), acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 4), acc1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 8), acc2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 12), acc3);
    if (t < nk) {
        const std::size_t k = identity ? t : ks[t];
        const std::int16_t *wv = wp + k * 4;
        const std::int16_t *xr = xp + k * n + ng_off;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                pacc[i * 4 + j] += static_cast<std::int32_t>(wv[i]) *
                                   static_cast<std::int32_t>(xr[j]);
    }
}

/**
 * Generic-v streaming pair pass, 128-bit: operands arrive
 * pre-interleaved in the 2v-wide paired layout (PairStreamGenericFn in
 * core/pair_pass.h). Per output row a 4-column accumulator block stays
 * in one xmm register across all step pairs; each iteration broadcasts
 * the row's (step, step+1) weight pair and retires TWO reduction steps
 * for four columns with one pmaddwd - no skip-list indirection, no
 * per-step interleaving. Exact int32 arithmetic, bit-identical to the
 * gather kernels over the same dense steps.
 */
void
pairStreamGenericSse2(const std::int16_t *wq, const std::int16_t *xq,
                      std::size_t pairs, int v, std::int32_t *pacc)
{
    const std::size_t pw = 2 * static_cast<std::size_t>(v);
    const int j4 = v & ~3; // widest multiple-of-4 prefix of the columns
    for (int i = 0; i < v; ++i) {
        std::int32_t *prow = pacc + i * v;
        for (int j = 0; j < j4; j += 4) {
            __m128i acc = _mm_setzero_si128();
            for (std::size_t p = 0; p < pairs; ++p) {
                std::int32_t wpair;
                std::memcpy(&wpair, wq + p * pw + 2 * i, sizeof wpair);
                const __m128i xb = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(xq + p * pw +
                                                      2 * j));
                acc = _mm_add_epi32(
                    acc, _mm_madd_epi16(_mm_set1_epi32(wpair), xb));
            }
            _mm_storeu_si128(reinterpret_cast<__m128i *>(prow + j), acc);
        }
        for (int j = j4; j < v; ++j) {
            std::int32_t sum = 0;
            for (std::size_t p = 0; p < pairs; ++p) {
                const std::int16_t *wr = wq + p * pw + 2 * i;
                const std::int16_t *xr = xq + p * pw + 2 * j;
                sum += static_cast<std::int32_t>(wr[0]) * xr[0] +
                       static_cast<std::int32_t>(wr[1]) * xr[1];
            }
            prow[j] = sum;
        }
    }
}

#endif // __SSE2__

const PairPassKernels &
pairPassKernels(IsaLevel level)
{
    static const std::array<PairPassKernels, kIsaLevelCount> table = [] {
        std::array<PairPassKernels, kIsaLevelCount> t{};
        t[0] = {IsaLevel::Scalar, &pairPass4Scalar,
                &pairPassGenericScalar};
        // Each tier inherits the best lower-tier kernel for slots it
        // does not specialize, so every row is fully populated.
        t[1] = t[0];
        t[1].level = IsaLevel::Sse2;
#if defined(__SSE2__)
        t[1].pass4 = &pairPass4Sse2;
        t[1].streamGeneric = &pairStreamGenericSse2;
#endif
        t[2] = t[1];
        t[2].level = IsaLevel::Avx2;
#if defined(PANACEA_HAVE_AVX2_KERNELS)
        t[2].pass4 = &pairPass4Avx2;
        t[2].passGeneric = &pairPassGenericAvx2;
        t[2].stream4 = &pairStream4Avx2;
        t[2].streamGeneric = &pairStreamGenericAvx2;
#endif
        t[3] = t[2];
        t[3].level = IsaLevel::Avx512;
#if defined(PANACEA_HAVE_AVX512_KERNELS)
        t[3].pass4 = &pairPass4Avx512;
        t[3].passGeneric = &pairPassGenericAvx512;
        t[3].stream4 = &pairStream4Avx512;
        t[3].streamGeneric = &pairStreamGenericAvx512;
#endif
        t[4] = t[3];
        t[4].level = IsaLevel::Avx512Vnni;
#if defined(PANACEA_HAVE_VNNI_KERNELS)
        // passGeneric is inherited: its inner loop is vpmulld-bound
        // (no madd+add pair to fuse), so the AVX-512 kernel is already
        // optimal for the VNNI tier.
        t[4].pass4 = &pairPass4Vnni;
        t[4].stream4 = &pairStream4Vnni;
        t[4].streamGeneric = &pairStreamGenericVnni;
#endif
        return t;
    }();

    const IsaLevel cap = supportedIsaCap();
    if (level > cap)
        level = cap;
    return table[static_cast<std::size_t>(level)];
}

} // namespace detail
} // namespace panacea
