/**
 * @file
 * Internal operand-preparation helpers shared by the blocked AQS-GEMM
 * and legacy bit-slice GEMM kernels: per-n-group skip lists derived
 * from an HO compression mask, and int16 widening of slice planes into
 * the contiguous [level][k][n] layout the pair-pass micro-kernels read
 * (see core/pair_pass.h).
 */

#ifndef PANACEA_CORE_OPERAND_PACK_H
#define PANACEA_CORE_OPERAND_PACK_H

#include <cstdint>
#include <vector>

#include "core/kernel_cost_model.h"
#include "slicing/slice_tensor.h"
#include "util/matrix.h"
#include "util/parallel_for.h"

namespace panacea {
namespace detail {

/**
 * Per-n-group skip lists for the activation side, shared read-only by
 * every band: ks[offsets[ng] .. offsets[ng+1]) are the reduction steps
 * whose HO vector is NOT compressed (dense steps). `identity`
 * short-circuits the indirection when no skipping is active.
 */
struct SkipLists
{
    bool identity = false;
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> ks;
    /// Complement lists (the COMPRESSED steps), for reductions that
    /// iterate whichever side of the partition is shorter.
    std::vector<std::uint32_t> coffsets;
    std::vector<std::uint32_t> cks;

    std::size_t
    count(std::size_t ng) const
    {
        return offsets[ng + 1] - offsets[ng];
    }
    const std::uint32_t *
    list(std::size_t ng) const
    {
        return ks.data() + offsets[ng];
    }
    std::size_t
    ccount(std::size_t ng) const
    {
        return coffsets[ng + 1] - coffsets[ng];
    }
    const std::uint32_t *
    clist(std::size_t ng) const
    {
        return cks.data() + coffsets[ng];
    }
};

/**
 * Build skip lists from a K x (N/v) compression mask: list ng holds the
 * k with mask(k, ng) == 0, in increasing order (complement list: the
 * k with mask(k, ng) != 0).
 */
inline SkipLists
buildSkipLists(const MatrixU8 &mask)
{
    SkipLists out;
    const std::size_t kk = mask.rows();
    const std::size_t n_groups = mask.cols();
    out.offsets.resize(n_groups + 1, 0);
    out.coffsets.resize(n_groups + 1, 0);
    out.ks.reserve(n_groups * kk);
    for (std::size_t ng = 0; ng < n_groups; ++ng) {
        for (std::size_t k = 0; k < kk; ++k) {
            if (mask(k, ng) == 0)
                out.ks.push_back(static_cast<std::uint32_t>(k));
            else
                out.cks.push_back(static_cast<std::uint32_t>(k));
        }
        out.offsets[ng + 1] = static_cast<std::uint32_t>(out.ks.size());
        out.coffsets[ng + 1] = static_cast<std::uint32_t>(out.cks.size());
    }
    return out;
}

/** @return step pairs covering kk reduction steps (odd kk pads one). */
inline std::size_t
pairCount(std::size_t kk)
{
    return (kk + 1) / 2;
}

/**
 * Pre-interleaved ("paired") copies of a matrix's slice planes for the
 * streaming pair passes (PairStream4Fn in core/pair_pass.h), blocked
 * per column group so a pass reads one contiguous run:
 *
 *   out[((l * n_groups + ng) * kkp + k2) * 2v + 2j + s]
 *     = plane_l(2*k2 + s, ng*v + j)
 *
 * with kkp = pairCount(kk); an odd trailing step stays zero. When
 * `ho_mask` (K x N/v, 1 = compressed) is non-null, the HO plane's
 * compressed vectors are stored as zeros, so a dense stream over the
 * masked plane sums exactly the skip list's dense steps. Parallel over
 * column groups; chunks write disjoint blocks of the pre-sized output,
 * so the result is byte-identical for any thread count.
 */
inline std::vector<std::int16_t>
pairedSlicePlanes(const SlicedMatrix &sliced, int v,
                  const MatrixU8 *ho_mask)
{
    const std::size_t kk = sliced.rows();
    const std::size_t n = sliced.cols();
    const std::size_t levels = sliced.levels();
    const std::size_t uv = static_cast<std::size_t>(v);
    const std::size_t n_groups = n / uv;
    const std::size_t kkp = pairCount(kk);
    const std::size_t pw = 2 * uv;
    std::vector<std::int16_t> out(levels * n_groups * kkp * pw, 0);
    for (std::size_t l = 0; l < levels; ++l) {
        const Slice *src = sliced.planes[l].data.data().data();
        const bool is_ho = l + 1 == levels;
        parallelFor(0, n_groups, [&](std::size_t b, std::size_t e, int) {
            for (std::size_t ng = b; ng < e; ++ng) {
                std::int16_t *dst =
                    out.data() + (l * n_groups + ng) * kkp * pw;
                for (std::size_t k = 0; k < kk; ++k) {
                    if (is_ho && ho_mask && (*ho_mask)(k, ng) != 0)
                        continue; // compressed vector stays zero
                    const Slice *row = src + k * n + ng * uv;
                    std::int16_t *cell =
                        dst + (k >> 1) * pw + (k & 1);
                    for (std::size_t j = 0; j < uv; ++j)
                        cell[2 * j] = row[j];
                }
            }
        });
    }
    return out;
}

/**
 * Pack one m-band's v rows of every slice plane into the paired-stream
 * layout: wq[(l * kkp + k2) * 2v + 2i + s] = plane_l(mg*v + i, 2*k2+s).
 * Reuses the vector's storage across bands (assign, not reallocate).
 */
inline void
packWeightBandPaired(const SlicedMatrix &w, std::size_t mg, int v,
                     std::vector<std::int16_t> &wq)
{
    const std::size_t kk = w.cols();
    const std::size_t levels = w.levels();
    const std::size_t uv = static_cast<std::size_t>(v);
    const std::size_t kkp = pairCount(kk);
    const std::size_t pw = 2 * uv;
    wq.assign(levels * kkp * pw, 0);
    for (std::size_t l = 0; l < levels; ++l) {
        const Slice *base = w.planes[l].data.data().data();
        std::int16_t *dst = wq.data() + l * kkp * pw;
        for (std::size_t i = 0; i < uv; ++i) {
            const Slice *src = base + (mg * uv + i) * kk;
            for (std::size_t k = 0; k < kk; ++k)
                dst[(k >> 1) * pw + 2 * i + (k & 1)] = src[k];
        }
    }
}

/**
 * Masked copy of one paired band plane (kkp * 2v int16): steps with
 * mask_row[k] != 0 are zeroed, so a dense stream over the copy sums
 * exactly the dense-step list of this band.
 */
inline void
maskBandPlanePaired(const std::int16_t *src,
                    const std::uint8_t *mask_row, std::size_t kk, int v,
                    std::vector<std::int16_t> &out)
{
    const std::size_t uv = static_cast<std::size_t>(v);
    const std::size_t kkp = pairCount(kk);
    const std::size_t pw = 2 * uv;
    out.assign(kkp * pw, 0);
    for (std::size_t k = 0; k < kk; ++k) {
        if (mask_row[k] != 0)
            continue;
        const std::size_t base = (k >> 1) * pw + (k & 1);
        for (std::size_t i = 0; i < uv; ++i)
            out[base + 2 * i] = src[base + 2 * i];
    }
}

/**
 * Pack one band's paired-stream weight operands: the unmasked pack
 * always, and the masked HO copy only when a streamed HO_w pass could
 * actually read it - the band's dense-step list (length wd_size) must
 * be incomplete AND clear the stream decision's profitable()
 * threshold; every HO_w pass's list is at most wd_size long and
 * profitable() is monotone nondecreasing in the list length under
 * every policy (see core/kernel_cost_model.h), so below the threshold
 * the copy is provably dead. Pass ho_mask_row = nullptr when weight
 * skipping is off. Both engines route their GEMM-call decision through
 * here, so the precondition and the per-pass choice can never use
 * different policies.
 */
inline void
packStreamWeightOperands(const SlicedMatrix &w, std::size_t mg, int v,
                         const std::uint8_t *ho_mask_row,
                         std::size_t wd_size,
                         const StreamDecision &decision,
                         std::vector<std::int16_t> &wq,
                         std::vector<std::int16_t> &wqm)
{
    packWeightBandPaired(w, mg, v, wq);
    const std::size_t kk = w.cols();
    if (ho_mask_row != nullptr && wd_size != kk &&
        decision.profitable(wd_size, kk)) {
        const std::size_t ho_off =
            (w.levels() - 1) * pairCount(kk) * 2 *
            static_cast<std::size_t>(v);
        maskBandPlanePaired(wq.data() + ho_off, ho_mask_row, kk, v, wqm);
    }
}

/**
 * Widened (int16) copies of a matrix's slice planes, [level][k][n]: the
 * operand format of the pair passes' 16-bit multiplies. Parallel over
 * rows; every chunk writes disjoint elements of the pre-sized output,
 * so the result is byte-identical for any thread count.
 */
inline std::vector<std::int16_t>
widenSlicePlanes(const SlicedMatrix &sliced)
{
    const std::size_t kk = sliced.rows();
    const std::size_t n = sliced.cols();
    const std::size_t levels = sliced.levels();
    std::vector<std::int16_t> out(levels * kk * n);
    for (std::size_t xl = 0; xl < levels; ++xl) {
        const Slice *src = sliced.planes[xl].data.data().data();
        std::int16_t *dst = out.data() + xl * kk * n;
        parallelFor(0, kk, [&](std::size_t b, std::size_t e, int) {
            for (std::size_t k = b; k < e; ++k)
                for (std::size_t j = 0; j < n; ++j)
                    dst[k * n + j] = src[k * n + j];
        });
    }
    return out;
}

} // namespace detail
} // namespace panacea

#endif // PANACEA_CORE_OPERAND_PACK_H
