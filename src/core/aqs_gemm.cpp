#include "core/aqs_gemm.h"

#include <algorithm>

#include "slicing/sparsity.h"
#include "util/logging.h"

namespace panacea {

const char *
toString(ActSkipMode mode)
{
    switch (mode) {
      case ActSkipMode::RValued:  return "r-valued";
      case ActSkipMode::ZeroOnly: return "zero-only";
      case ActSkipMode::None:     return "none";
    }
    return "?";
}

double
AqsStats::macReduction() const
{
    if (denseOuterProducts == 0)
        return 0.0;
    double dense_macs =
        static_cast<double>(denseOuterProducts) * 16.0;
    double done = static_cast<double>(totalMults());
    return 1.0 - done / dense_macs;
}

AqsStats &
AqsStats::operator+=(const AqsStats &other)
{
    denseOuterProducts += other.denseOuterProducts;
    executedOuterProducts += other.executedOuterProducts;
    skippedOuterProducts += other.skippedOuterProducts;
    mults += other.mults;
    adds += other.adds;
    compMults += other.compMults;
    compAdds += other.compAdds;
    compExtraEmaNibbles += other.compExtraEmaNibbles;
    wNibbles += other.wNibbles;
    xNibbles += other.xNibbles;
    wIndexBits += other.wIndexBits;
    xIndexBits += other.xIndexBits;
    denseNibbles += other.denseNibbles;
    return *this;
}

WeightOperand
prepareWeights(const MatrixI32 &codes, int n, const AqsConfig &cfg)
{
    WeightOperand op;
    op.sliced = sbrSliceMatrix(codes, n);
    op.totalCodes = op.sliced.reconstruct();
    panic_if(!(op.totalCodes == codes), "SBR slicing is not lossless");

    const Matrix<Slice> &ho = op.sliced.hoPlane().data;
    if (cfg.skipWeightVectors) {
        op.hoMask = weightVectorMask(ho, cfg.v);
    } else {
        op.hoMask = MatrixU8(codes.rows() / cfg.v, codes.cols(), 0);
    }
    op.streams = encodeWeightPlane(ho, cfg.v, cfg.rleIndexBits);
    return op;
}

namespace {

/** Build mask + RLE streams for an activation HO plane. */
void
finishActivationOperand(ActivationOperand &op, const AqsConfig &cfg)
{
    const Matrix<Slice> &ho = op.sliced.hoPlane().data;
    Slice skip_value = 0;
    switch (cfg.actSkip) {
      case ActSkipMode::RValued:
        skip_value = op.r;
        break;
      case ActSkipMode::ZeroOnly:
        skip_value = 0;
        break;
      case ActSkipMode::None:
        op.hoMask = MatrixU8(ho.rows(), ho.cols() / cfg.v, 0);
        op.streams = encodeActivationPlane(ho, cfg.v, /*r=*/-1,
                                           cfg.rleIndexBits);
        return;
    }
    op.hoMask = activationVectorMask(ho, cfg.v, skip_value);
    op.streams = encodeActivationPlane(ho, cfg.v, skip_value,
                                       cfg.rleIndexBits);
}

} // namespace

ActivationOperand
prepareActivations(const MatrixI32 &codes, int k, std::int32_t zp,
                   const AqsConfig &cfg)
{
    ActivationOperand op;
    op.sliced = activationSliceMatrix(codes, k);
    op.r = static_cast<Slice>((zp >> (4 * k)) & 0xF);
    finishActivationOperand(op, cfg);
    return op;
}

ActivationOperand
prepareActivationsDbs(const MatrixI32 &codes, int lo_bits, Slice r,
                      const AqsConfig &cfg)
{
    ActivationOperand op;
    op.sliced = dbsSliceMatrix(codes, lo_bits);
    op.r = r;
    finishActivationOperand(op, cfg);
    return op;
}

MatrixI64
aqsGemm(const WeightOperand &w, const ActivationOperand &x,
        const AqsConfig &cfg, AqsStats *stats)
{
    const std::size_t m = w.sliced.rows();
    const std::size_t kk = w.sliced.cols();
    const std::size_t n = x.sliced.cols();
    panic_if(x.sliced.rows() != kk, "AQS-GEMM shape mismatch: W ", m, "x",
             kk, " * x ", x.sliced.rows(), "x", n);
    const int v = cfg.v;
    panic_if(m % v != 0 || n % v != 0,
             "AQS-GEMM needs M and N divisible by v=", v);

    const std::size_t m_groups = m / v;
    const std::size_t n_groups = n / v;
    const std::size_t w_levels = w.sliced.levels();
    const std::size_t x_levels = x.sliced.levels();
    const int w_ho = static_cast<int>(w_levels) - 1;
    const int x_ho = static_cast<int>(x_levels) - 1;
    const int x_ho_shift = x.sliced.hoPlane().shift;
    const bool r_skip = cfg.actSkip == ActSkipMode::RValued;

    AqsStats local;
    local.denseOuterProducts =
        m_groups * n_groups * kk * w_levels * x_levels;

    MatrixI64 acc(m, n);

    // Offline term b' = r * 2^shift * (row sums of the total weight
    // codes): folded into the bias, zero runtime cost (Eq. (6)).
    std::vector<std::int64_t> b_prime;
    if (r_skip) {
        b_prime.assign(m, 0);
        for (std::size_t row = 0; row < m; ++row) {
            std::int64_t sum = 0;
            for (std::size_t k = 0; k < kk; ++k)
                sum += w.totalCodes(row, k);
            b_prime[row] = sum * (static_cast<std::int64_t>(x.r)
                                  << x_ho_shift);
        }
    }

    std::vector<std::int64_t> wsum(v);
    for (std::size_t mg = 0; mg < m_groups; ++mg) {
        for (std::size_t ng = 0; ng < n_groups; ++ng) {
            bool any_x_compressed = false;
            std::fill(wsum.begin(), wsum.end(), 0);

            for (std::size_t k = 0; k < kk; ++k) {
                const bool w_comp = w.hoMask(mg, k) != 0;
                const bool x_comp = x.hoMask(k, ng) != 0;
                any_x_compressed = any_x_compressed || x_comp;

                if (r_skip) {
                    if (!x_comp) {
                        // Eq. (6): accumulate total weight columns for
                        // uncompressed activation vectors; the CS reuses
                        // slices loaded for the bit-slice products.
                        for (int i = 0; i < v; ++i)
                            wsum[i] += w.totalCodes(mg * v + i, k);
                        if (cfg.useEq6)
                            local.compAdds += static_cast<std::uint64_t>(v) *
                                              w_levels;
                    } else if (!cfg.useEq6) {
                        // Eq. (5): compressed columns must be re-loaded
                        // and summed explicitly.
                        local.compAdds += static_cast<std::uint64_t>(v) *
                                          w_levels;
                        local.compExtraEmaNibbles +=
                            static_cast<std::uint64_t>(v) * w_levels;
                    }
                }

                for (std::size_t wl = 0; wl < w_levels; ++wl) {
                    const bool w_is_ho = static_cast<int>(wl) == w_ho;
                    if (w_is_ho && w_comp) {
                        local.skippedOuterProducts += x_levels;
                        continue;
                    }
                    const SlicePlane &wp = w.sliced.planes[wl];
                    for (std::size_t xl = 0; xl < x_levels; ++xl) {
                        const bool x_is_ho = static_cast<int>(xl) == x_ho;
                        if (x_is_ho && x_comp &&
                            cfg.actSkip != ActSkipMode::None) {
                            ++local.skippedOuterProducts;
                            continue;
                        }
                        const SlicePlane &xp = x.sliced.planes[xl];
                        const int shift = wp.shift + xp.shift;
                        ++local.executedOuterProducts;
                        for (int i = 0; i < v; ++i) {
                            const std::int64_t ws =
                                wp.data(mg * v + i, k);
                            for (int j = 0; j < v; ++j) {
                                const std::int64_t xs =
                                    xp.data(k, ng * v + j);
                                acc(mg * v + i, ng * v + j) +=
                                    (ws * xs) << shift;
                            }
                        }
                    }
                }
            }

            if (r_skip) {
                // Compensation outer product (Eq. (6)): 16 multiplies
                // per 4x4 output block:
                //   comp = b' - r * 2^shift * wsum, broadcast over j.
                // When nothing was compressed the term is identically
                // zero (b' = r*sum over all K); hardware performs it
                // unconditionally, matching Table I's constant 16 Mul.
                (void)any_x_compressed;
                const std::int64_t r_scaled =
                    static_cast<std::int64_t>(x.r) << x_ho_shift;
                local.compMults +=
                    static_cast<std::uint64_t>(v) * static_cast<std::uint64_t>(v);
                for (int i = 0; i < v; ++i) {
                    const std::int64_t comp =
                        b_prime[mg * v + i] - r_scaled * wsum[i];
                    for (int j = 0; j < v; ++j)
                        acc(mg * v + i, ng * v + j) += comp;
                }
            }
        }
    }

    // Multiply/add counts follow directly from executed outer products.
    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) * static_cast<std::uint64_t>(v);
    local.adds = local.mults;

    // Traffic accounting: dense LO planes + RLE-compressed HO planes.
    const std::uint64_t w_lo_nibbles =
        static_cast<std::uint64_t>(m) * kk * (w_levels - 1);
    const std::uint64_t x_lo_nibbles =
        static_cast<std::uint64_t>(kk) * n * (x_levels - 1);
    std::uint64_t w_ho_nibbles = 0;
    for (const RleStream &s : w.streams) {
        w_ho_nibbles += s.storedCount() * static_cast<std::uint64_t>(v);
        local.wIndexBits += s.storedCount() *
                            static_cast<std::uint64_t>(s.indexBits());
    }
    std::uint64_t x_ho_nibbles = 0;
    for (const RleStream &s : x.streams) {
        x_ho_nibbles += s.storedCount() * static_cast<std::uint64_t>(v);
        local.xIndexBits += s.storedCount() *
                            static_cast<std::uint64_t>(s.indexBits());
    }
    local.wNibbles = w_lo_nibbles + w_ho_nibbles;
    local.xNibbles = x_lo_nibbles + x_ho_nibbles;
    local.denseNibbles = static_cast<std::uint64_t>(m) * kk * w_levels +
                         static_cast<std::uint64_t>(kk) * n * x_levels;

    if (stats)
        *stats += local;
    return acc;
}

} // namespace panacea
