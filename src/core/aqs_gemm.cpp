#include "core/aqs_gemm.h"

#include <algorithm>
#include <array>
#include <vector>

#include "core/kernel_cost_model.h"
#include "core/operand_pack.h"
#include "core/pair_pass.h"
#include "slicing/sparsity.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

const char *
toString(ActSkipMode mode)
{
    switch (mode) {
      case ActSkipMode::RValued:  return "r-valued";
      case ActSkipMode::ZeroOnly: return "zero-only";
      case ActSkipMode::None:     return "none";
    }
    return "?";
}

double
AqsStats::macReduction() const
{
    if (denseOuterProducts == 0 || macsPerOuterProduct <= 0.0)
        return 0.0;
    double dense_macs = static_cast<double>(denseOuterProducts) *
                        macsPerOuterProduct;
    double done = static_cast<double>(totalMults());
    return 1.0 - done / dense_macs;
}

AqsStats &
AqsStats::operator+=(const AqsStats &other)
{
    // Dense-OP-weighted blend keeps the macReduction() denominator
    // exact when layers ran with different vector lengths.
    const double d_old = static_cast<double>(denseOuterProducts);
    const double d_other = static_cast<double>(other.denseOuterProducts);
    if (d_old + d_other > 0.0)
        macsPerOuterProduct = (macsPerOuterProduct * d_old +
                               other.macsPerOuterProduct * d_other) /
                              (d_old + d_other);
    return addCounters(other);
}

AqsStats &
AqsStats::addCounters(const AqsStats &other)
{
    denseOuterProducts += other.denseOuterProducts;
    executedOuterProducts += other.executedOuterProducts;
    skippedOuterProducts += other.skippedOuterProducts;
    mults += other.mults;
    adds += other.adds;
    compMults += other.compMults;
    compAdds += other.compAdds;
    compExtraEmaNibbles += other.compExtraEmaNibbles;
    wNibbles += other.wNibbles;
    xNibbles += other.xNibbles;
    wIndexBits += other.wIndexBits;
    xIndexBits += other.xIndexBits;
    denseNibbles += other.denseNibbles;
    return *this;
}

WeightOperand
prepareWeights(const MatrixI32 &codes, int n, const AqsConfig &cfg)
{
    WeightOperand op;
    op.sliced = sbrSliceMatrix(codes, n);
    op.totalCodes = op.sliced.reconstruct();
    panic_if(!(op.totalCodes == codes), "SBR slicing is not lossless");

    const Matrix<Slice> &ho = op.sliced.hoPlane().data;
    if (cfg.skipWeightVectors) {
        op.hoMask = weightVectorMask(ho, cfg.v);
    } else {
        op.hoMask = MatrixU8(codes.rows() / cfg.v, codes.cols(), 0);
    }
    op.streams = encodeWeightPlane(ho, cfg.v, cfg.rleIndexBits);
    return op;
}

namespace {

/**
 * Whether any streaming kernel could consume paired operands on this
 * host + build (the best runnable dispatch row has one, via the shared
 * streamKernelsRunnable predicate in core/pair_pass.h) AND the active
 * policy could ever choose a stream: gates the paired-plane precompute
 * so scalar-only hosts, non-streamable configurations and forced
 * gather runs pay neither the prep time nor the memory.
 */
bool
streamKernelsAvailable(const AqsConfig &cfg)
{
    if (activeStreamPolicy() == StreamPolicy::Gather)
        return false;
    return detail::streamKernelsRunnable(
        detail::pairPassKernels(activeIsaLevel()), cfg.v);
}

/** Build mask, RLE streams and kernel operand caches for an
 *  activation HO plane. */
void
finishActivationOperand(ActivationOperand &op, const AqsConfig &cfg)
{
    const Matrix<Slice> &ho = op.sliced.hoPlane().data;
    op.widenedPlanes = detail::widenSlicePlanes(op.sliced);
    Slice skip_value = 0;
    switch (cfg.actSkip) {
      case ActSkipMode::RValued:
        skip_value = op.r;
        break;
      case ActSkipMode::ZeroOnly:
        skip_value = 0;
        break;
      case ActSkipMode::None:
        op.hoMask = MatrixU8(ho.rows(), ho.cols() / cfg.v, 0);
        op.streams = encodeActivationPlane(ho, cfg.v, /*r=*/-1,
                                           cfg.rleIndexBits);
        if (streamKernelsAvailable(cfg))
            op.pairedPlanes =
                detail::pairedSlicePlanes(op.sliced, cfg.v, &op.hoMask);
        return;
    }
    op.hoMask = activationVectorMask(ho, cfg.v, skip_value);
    op.streams = encodeActivationPlane(ho, cfg.v, skip_value,
                                       cfg.rleIndexBits);
    if (streamKernelsAvailable(cfg))
        op.pairedPlanes =
            detail::pairedSlicePlanes(op.sliced, cfg.v, &op.hoMask);
}

/** Shape checks shared by the reference and blocked kernels. */
void
checkShapes(const WeightOperand &w, const ActivationOperand &x, int v)
{
    const std::size_t m = w.sliced.rows();
    const std::size_t kk = w.sliced.cols();
    const std::size_t n = x.sliced.cols();
    panic_if(x.sliced.rows() != kk, "AQS-GEMM shape mismatch: W ", m, "x",
             kk, " * x ", x.sliced.rows(), "x", n);
    panic_if(m % v != 0 || n % v != 0,
             "AQS-GEMM needs M and N divisible by v=", v);
}

/**
 * Traffic accounting shared by both kernels and the counting-only
 * entry point: dense LO planes plus RLE-compressed HO planes,
 * identical for any execution schedule. The activation side covers the
 * column bands [ng_begin, ng_end) only (full kernels pass the whole
 * range); the weight side always counts in full - weights are loaded
 * once per GEMM call regardless of how many columns it serves.
 */
void
countTraffic(AqsStats &local, const WeightOperand &w,
             const ActivationOperand &x, std::size_t m, std::size_t kk,
             std::size_t w_levels, std::size_t x_levels, int v,
             std::size_t ng_begin, std::size_t ng_end)
{
    const std::size_t n =
        (ng_end - ng_begin) * static_cast<std::size_t>(v);
    const std::uint64_t w_lo_nibbles =
        static_cast<std::uint64_t>(m) * kk * (w_levels - 1);
    const std::uint64_t x_lo_nibbles =
        static_cast<std::uint64_t>(kk) * n * (x_levels - 1);
    std::uint64_t w_ho_nibbles = 0;
    for (const RleStream &s : w.streams) {
        w_ho_nibbles += s.storedCount() * static_cast<std::uint64_t>(v);
        local.wIndexBits += s.storedCount() *
                            static_cast<std::uint64_t>(s.indexBits());
    }
    std::uint64_t x_ho_nibbles = 0;
    // Hand-built operands may carry no streams (mode None never reads
    // them); they then contribute no compressed-HO traffic.
    const std::size_t s_end = std::min(ng_end, x.streams.size());
    for (std::size_t ng = ng_begin; ng < s_end; ++ng) {
        const RleStream &s = x.streams[ng];
        x_ho_nibbles += s.storedCount() * static_cast<std::uint64_t>(v);
        local.xIndexBits += s.storedCount() *
                            static_cast<std::uint64_t>(s.indexBits());
    }
    local.wNibbles = w_lo_nibbles + w_ho_nibbles;
    local.xNibbles = x_lo_nibbles + x_ho_nibbles;
    local.denseNibbles = static_cast<std::uint64_t>(m) * kk * w_levels +
                         static_cast<std::uint64_t>(kk) * n * x_levels;
}

detail::SkipLists
buildActSkipLists(const ActivationOperand &x, const AqsConfig &cfg)
{
    if (cfg.actSkip == ActSkipMode::None) {
        detail::SkipLists out;
        out.identity = true;
        return out;
    }
    return detail::buildSkipLists(x.hoMask);
}

/**
 * The register-blocked kernel body for one contiguous band of m-groups
 * [mg0, mg1). Instantiated with VT = 4 for the paper-default vector
 * length (fixed-size micro-tile, fully unrollable) and VT = 0 for a
 * runtime v (v <= 16).
 *
 * Structure per m-group:
 *   - pack the v weight rows of every slice plane into a contiguous
 *     [k][i] tile (one strided pass, reused across every n-group);
 *   - build the weight-side skip list (dense k's) from the HO mask.
 * Per (mg, ng) tile:
 *   - run one branch-free pair pass (through the ISA-dispatched kernel
 *     table `kern`; see core/pair_pass.h) per (weight-plane,
 *     activation-plane) combination over the matching skip list - all
 *     steps for LO/LO pairs, the weight list for HO_w, the activation
 *     list for HO_x, their intersection for HO_w/HO_x;
 *   - merge each int32 pair accumulator into the int64 micro-tile with
 *     its positional shift, add the Eq. (6) compensation, and write the
 *     tile back in one pass.
 * Outer-product counts fall out of the list lengths; no counter or mask
 * test executes inside the hot loops. Bands own disjoint accumulator
 * rows and all counters are exact integer sums, so results and stats
 * are bit-identical for any thread count.
 */
template <int VT>
void
blockedBand(const WeightOperand &w, const ActivationOperand &x,
            const AqsConfig &cfg, const detail::PairPassKernels &kern,
            const detail::StreamDecision &sd,
            const detail::SkipLists &xd, const std::int16_t *x16,
            const std::int16_t *xq, std::size_t mg0, std::size_t mg1,
            MatrixI64 &acc, AqsStats &local)
{
    const int v = VT > 0 ? VT : cfg.v;
    constexpr int TV = VT > 0 ? VT : 16; // static tile bound (v <= 16)
    panic_if(v > TV, "AQS-GEMM blocked kernel supports v <= ", TV);
    const std::size_t uv = static_cast<std::size_t>(v);

    const std::size_t kk = w.sliced.cols();
    const std::size_t n = x.sliced.cols();
    const std::size_t n_groups = n / uv;
    const std::size_t w_levels = w.sliced.levels();
    const std::size_t x_levels = x.sliced.levels();
    const std::size_t w_ho = w_levels - 1;
    const std::size_t x_ho = x_levels - 1;
    const bool r_skip = cfg.actSkip == ActSkipMode::RValued;
    const int x_ho_shift = x.sliced.hoPlane().shift;
    const std::int64_t r_scaled = static_cast<std::int64_t>(x.r)
                                  << x_ho_shift;
    const std::uint64_t dense_per_tile =
        static_cast<std::uint64_t>(kk) * w_levels * x_levels;

    std::vector<const std::int16_t *> xbase(x_levels);
    std::vector<int> xshift(x_levels);
    for (std::size_t xl = 0; xl < x_levels; ++xl) {
        xbase[xl] = x16 + xl * kk * n;
        xshift[xl] = x.sliced.planes[xl].shift;
    }

    // Streaming fast path (SSE2+ generic-v, AVX2+ for v = 4): dense
    // masked passes over the pre-interleaved operands replace skip-list
    // gathers whenever the stream decision `sd` (resolved once per
    // GEMM call from the active policy + this host's calibrated costs;
    // see core/kernel_cost_model.h) predicts the stream cheaper. Stats
    // always come from the list lengths, so the choice never changes
    // results or counters.
    const bool stream_ok =
        xq != nullptr && detail::streamKernelsRunnable(kern, v);
    const std::size_t kkp = detail::pairCount(kk);
    const std::size_t pw = 2 * uv;

    // Per-band scratch, allocated once and reused for every m-group.
    std::vector<std::int16_t> wpack(w_levels * kk * uv);
    std::vector<std::int16_t> wq, wqm;
    std::vector<std::int32_t> ttpack(r_skip ? kk * uv : 0);
    std::vector<std::uint32_t> wd, wxd;
    wd.reserve(kk);
    wxd.reserve(kk);
    std::array<std::int32_t, TV * TV> pacc;
    std::array<std::int64_t, TV * TV> tile;
    std::array<std::int64_t, TV> wsum, bprow, ttfull;

    for (std::size_t mg = mg0; mg < mg1; ++mg) {
        const std::uint8_t *wmask = w.hoMask.row(mg).data();

        // Weight-side skip list: dense reduction steps for this band.
        wd.clear();
        for (std::size_t k = 0; k < kk; ++k)
            if (wmask[k] == 0)
                wd.push_back(static_cast<std::uint32_t>(k));
        const bool wd_full = wd.size() == kk;

        // Pack the band's weight rows, widened: wpack[(wl*kk + k)*v + i].
        for (std::size_t wl = 0; wl < w_levels; ++wl) {
            const Slice *base = w.sliced.planes[wl].data.data().data();
            std::int16_t *dst = wpack.data() + wl * kk * uv;
            for (int i = 0; i < v; ++i) {
                const Slice *src =
                    base + (mg * uv + static_cast<std::size_t>(i)) * kk;
                for (std::size_t k = 0; k < kk; ++k)
                    dst[k * uv + static_cast<std::size_t>(i)] = src[k];
            }
        }

        // Paired-stream weight operands (unmasked + masked HO when a
        // streamed HO_w pass could read it; see operand_pack.h).
        if (stream_ok)
            detail::packStreamWeightOperands(w.sliced, mg, v, wmask,
                                             wd.size(), sd, wq, wqm);

        if (r_skip) {
            // Offline term b' = r * 2^shift * row sums of the total
            // weight codes (Eq. (6)), plus the packed total codes the
            // CS reuses for the wsum accumulation.
            for (int i = 0; i < v; ++i) {
                const std::int32_t *src =
                    w.totalCodes.row(mg * uv + static_cast<std::size_t>(i))
                        .data();
                std::int64_t sum = 0;
                for (std::size_t k = 0; k < kk; ++k) {
                    sum += src[k];
                    ttpack[k * uv + static_cast<std::size_t>(i)] = src[k];
                }
                ttfull[static_cast<std::size_t>(i)] = sum;
                bprow[static_cast<std::size_t>(i)] = sum * r_scaled;
            }
        }

        for (std::size_t ng = 0; ng < n_groups; ++ng) {
            const std::uint32_t *xlist =
                xd.identity ? nullptr : xd.list(ng);
            const std::size_t nxd = xd.identity ? kk : xd.count(ng);
            const bool xd_full = nxd == kk;
            const std::size_t ng_off = ng * uv;

            // Intersection list for the HO_w x HO_x pair (lazy; only
            // when both sides actually compress something).
            const std::uint32_t *both = nullptr;
            std::size_t nboth = 0;
            bool both_identity = false;
            if (wd_full) {
                both = xlist;
                nboth = nxd;
                both_identity = xd.identity || xd_full;
                if (both_identity) {
                    both = nullptr;
                    nboth = kk;
                }
            } else if (xd.identity || xd_full) {
                both = wd.data();
                nboth = wd.size();
            } else {
                if (stream_ok) {
                    // Count first; materialize the list only when the
                    // gather path will read it (the stream path needs
                    // just the count for stats and the cost decision).
                    nboth = 0;
                    for (std::size_t t = 0; t < nxd; ++t)
                        nboth += wmask[xlist[t]] == 0 ? 1 : 0;
                }
                if (stream_ok && sd.profitable(nboth, kk)) {
                    both = nullptr; // stream pass; ks is never read
                } else {
                    wxd.clear();
                    for (std::size_t t = 0; t < nxd; ++t) {
                        const std::uint32_t k = xlist[t];
                        if (wmask[k] == 0)
                            wxd.push_back(k);
                    }
                    both = wxd.data();
                    nboth = wxd.size();
                }
            }

            tile.fill(0);
            std::uint64_t executed = 0;

            for (std::size_t wl = 0; wl < w_levels; ++wl) {
                const std::int16_t *wp = wpack.data() + wl * kk * uv;
                const int w_shift = w.sliced.planes[wl].shift;
                const bool w_is_ho = wl == w_ho;
                for (std::size_t xl = 0; xl < x_levels; ++xl) {
                    const std::uint32_t *ks;
                    std::size_t nk;
                    bool identity;
                    const bool x_is_ho = xl == x_ho;
                    if (w_is_ho && x_is_ho) {
                        ks = both;
                        nk = nboth;
                        identity = both == nullptr;
                    } else if (w_is_ho) {
                        ks = wd_full ? nullptr : wd.data();
                        nk = wd_full ? kk : wd.size();
                        identity = wd_full;
                    } else if (x_is_ho) {
                        ks = (xd.identity || xd_full) ? nullptr : xlist;
                        nk = nxd;
                        identity = ks == nullptr;
                    } else {
                        ks = nullptr;
                        nk = kk;
                        identity = true;
                    }

                    if (stream_ok && sd.profitable(nk, kk)) {
                        const std::int16_t *wqp =
                            (w_is_ho && !wd_full)
                                ? wqm.data()
                                : wq.data() + wl * kkp * pw;
                        const std::int16_t *xqp =
                            xq + (xl * n_groups + ng) * kkp * pw;
                        if constexpr (VT == 4)
                            kern.stream4(wqp, xqp, kkp, pacc.data());
                        else
                            kern.streamGeneric(wqp, xqp, kkp, v,
                                               pacc.data());
                    } else if constexpr (VT == 4) {
                        kern.pass4(wp, xbase[xl], n, ng_off, ks, nk,
                                   identity, pacc.data());
                    } else {
                        kern.passGeneric(wp, xbase[xl], n, ng_off, ks,
                                         nk, identity, v, pacc.data());
                    }
                    executed += nk;

                    const int shift = w_shift + xshift[xl];
                    for (int e = 0; e < v * v; ++e)
                        tile[static_cast<std::size_t>(e)] +=
                            static_cast<std::int64_t>(
                                pacc[static_cast<std::size_t>(e)])
                            << shift;
                }
            }

            local.executedOuterProducts += executed;
            local.skippedOuterProducts += dense_per_tile - executed;

            if (r_skip) {
                // Eq. (6): wsum over the weight columns of uncompressed
                // activation vectors (the CS reuses the slices already
                // loaded); compensation applied once per output block.
                // Computed via whichever side of the dense/compressed
                // partition is shorter - full-sum minus complement is
                // the same exact int64 value as the direct sum.
                if (xd.identity || xd_full) {
                    wsum = ttfull;
                } else if (2 * nxd >= kk) {
                    wsum.fill(0);
                    const std::uint32_t *cl = xd.clist(ng);
                    const std::size_t nc = xd.ccount(ng);
                    for (std::size_t t = 0; t < nc; ++t) {
                        const std::int32_t *tt =
                            ttpack.data() + cl[t] * uv;
                        for (int i = 0; i < v; ++i)
                            wsum[static_cast<std::size_t>(i)] += tt[i];
                    }
                    for (int i = 0; i < v; ++i)
                        wsum[static_cast<std::size_t>(i)] =
                            ttfull[static_cast<std::size_t>(i)] -
                            wsum[static_cast<std::size_t>(i)];
                } else {
                    wsum.fill(0);
                    for (std::size_t t = 0; t < nxd; ++t) {
                        const std::int32_t *tt =
                            ttpack.data() + xlist[t] * uv;
                        for (int i = 0; i < v; ++i)
                            wsum[static_cast<std::size_t>(i)] += tt[i];
                    }
                }
                if (cfg.useEq6) {
                    local.compAdds += static_cast<std::uint64_t>(nxd) *
                                      static_cast<std::uint64_t>(v) *
                                      w_levels;
                } else {
                    const std::uint64_t n_xc =
                        static_cast<std::uint64_t>(kk - nxd);
                    local.compAdds += n_xc *
                                      static_cast<std::uint64_t>(v) *
                                      w_levels;
                    local.compExtraEmaNibbles +=
                        n_xc * static_cast<std::uint64_t>(v) * w_levels;
                }
                local.compMults += static_cast<std::uint64_t>(v) *
                                   static_cast<std::uint64_t>(v);
                for (int i = 0; i < v; ++i) {
                    const std::int64_t comp =
                        bprow[static_cast<std::size_t>(i)] -
                        r_scaled * wsum[static_cast<std::size_t>(i)];
                    std::int64_t *t = tile.data() + i * v;
                    for (int j = 0; j < v; ++j)
                        t[j] += comp;
                }
            }

            // Single write-back of the micro-tile.
            for (int i = 0; i < v; ++i) {
                std::int64_t *arow =
                    &acc(mg * uv + static_cast<std::size_t>(i), ng_off);
                const std::int64_t *t = tile.data() + i * v;
                for (int j = 0; j < v; ++j)
                    arow[j] = t[j];
            }
        }
    }
}

} // namespace

ActivationOperand
prepareActivations(const MatrixI32 &codes, int k, std::int32_t zp,
                   const AqsConfig &cfg)
{
    ActivationOperand op;
    op.sliced = activationSliceMatrix(codes, k);
    op.r = static_cast<Slice>((zp >> (4 * k)) & 0xF);
    finishActivationOperand(op, cfg);
    return op;
}

ActivationOperand
prepareActivationsDbs(const MatrixI32 &codes, int lo_bits, Slice r,
                      const AqsConfig &cfg)
{
    ActivationOperand op;
    op.sliced = dbsSliceMatrix(codes, lo_bits);
    op.r = r;
    finishActivationOperand(op, cfg);
    return op;
}

MatrixI64
aqsGemm(const WeightOperand &w, const ActivationOperand &x,
        const AqsConfig &cfg, AqsStats *stats)
{
    const int v = cfg.v;
    checkShapes(w, x, v);
    const std::size_t m = w.sliced.rows();
    const std::size_t kk = w.sliced.cols();
    const std::size_t n = x.sliced.cols();

    // The int32 pair accumulators are exact while K * max|product|
    // stays below 2^31 (|slice product| <= 8 * 63), and the blocked
    // micro-tile is bounded at v <= 16. Fall back to the scalar
    // reference outside that domain.
    if (kk >= (std::size_t{1} << 22) || v > 16)
        return aqsGemmReference(w, x, cfg, stats);

    const std::size_t m_groups = m / static_cast<std::size_t>(v);
    const std::size_t n_groups = n / static_cast<std::size_t>(v);
    const std::size_t w_levels = w.sliced.levels();
    const std::size_t x_levels = x.sliced.levels();

    // Activation-side skip lists, shared read-only by every band.
    const detail::SkipLists xd = buildActSkipLists(x, cfg);

    // Micro-kernel row for the active ISA level, resolved once per
    // call: all variants are exact-integer and order-insensitive, so
    // the level changes throughput only, never results.
    const detail::PairPassKernels &kern =
        detail::pairPassKernels(activeIsaLevel());

    // Stream-vs-gather decision for this call, also resolved once (the
    // policy and cost-table lookups stay out of the per-pass loop).
    // Every alternative sums the same products, so the decision changes
    // throughput only, never results or stats.
    const detail::StreamDecision sd = detail::streamDecision(
        kern.level, v == 4 ? detail::KernelFamily::Pass4
                           : detail::KernelFamily::Generic);

    // Widened activation planes (int16, same [k][n] layout): the pair
    // passes run on 16-bit operands so two reduction steps fit one
    // multiply-accumulate lane. prepareActivations* precomputes them;
    // widen on the fly only for hand-built operands.
    std::vector<std::int16_t> x16_local;
    const std::int16_t *x16 = nullptr;
    if (x.widenedPlanes.size() == x_levels * kk * n) {
        x16 = x.widenedPlanes.data();
    } else {
        x16_local = detail::widenSlicePlanes(x.sliced);
        x16 = x16_local.data();
    }

    // Paired-stream activation planes for the AVX2+ streaming passes;
    // like the widened planes they are precomputed by
    // prepareActivations* and rebuilt here only for hand-built
    // operands (and only when a streaming kernel exists).
    const std::size_t paired_size = x_levels * n_groups *
                                    detail::pairCount(kk) *
                                    (2 * static_cast<std::size_t>(v));
    std::vector<std::int16_t> xq_local;
    const std::int16_t *xq = nullptr;
    // The byte size alone cannot distinguish layouts built for a
    // different v (it is v-independent); the mask width pins it. The
    // local rebuild also requires a well-shaped mask: hand-built
    // operands may leave hoMask empty under ActSkipMode::None (the one
    // mode that never reads it) - then xq stays null and the gather
    // path runs.
    const bool mask_ok =
        x.hoMask.rows() == kk && x.hoMask.cols() == n_groups;
    const bool have_stream =
        sd.policy != StreamPolicy::Gather &&
        detail::streamKernelsRunnable(kern, v);
    if (have_stream && x.pairedPlanes.size() == paired_size && mask_ok) {
        xq = x.pairedPlanes.data();
    } else if (have_stream && mask_ok) {
        xq_local = detail::pairedSlicePlanes(x.sliced, v, &x.hoMask);
        xq = xq_local.data();
    }

    MatrixI64 acc(m, n);

    // Parallel over m-groups: bands own disjoint accumulator rows, and
    // every per-band counter is an exact integer sum, so the result and
    // the statistics are bit-identical for any thread count.
    const int chunks = parallelChunkCount(m_groups);
    std::vector<AqsStats> partial(static_cast<std::size_t>(chunks));
    parallelFor(0, m_groups, [&](std::size_t b, std::size_t e, int c) {
        AqsStats &part = partial[static_cast<std::size_t>(c)];
        if (v == 4)
            blockedBand<4>(w, x, cfg, kern, sd, xd, x16, xq, b, e, acc,
                           part);
        else
            blockedBand<0>(w, x, cfg, kern, sd, xd, x16, xq, b, e, acc,
                           part);
    });

    AqsStats local;
    for (const AqsStats &part : partial) {
        local.executedOuterProducts += part.executedOuterProducts;
        local.skippedOuterProducts += part.skippedOuterProducts;
        local.compMults += part.compMults;
        local.compAdds += part.compAdds;
        local.compExtraEmaNibbles += part.compExtraEmaNibbles;
    }
    local.denseOuterProducts =
        m_groups * n_groups * kk * w_levels * x_levels;
    local.macsPerOuterProduct = static_cast<double>(v) * v;

    // Multiply/add counts follow directly from executed outer products.
    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) *
                  static_cast<std::uint64_t>(v);
    local.adds = local.mults;

    countTraffic(local, w, x, m, kk, w_levels, x_levels, v, 0,
                 n / static_cast<std::size_t>(v));

    if (stats)
        *stats += local;
    return acc;
}

MatrixI64
aqsGemmReference(const WeightOperand &w, const ActivationOperand &x,
                 const AqsConfig &cfg, AqsStats *stats)
{
    const std::size_t m = w.sliced.rows();
    const std::size_t kk = w.sliced.cols();
    const std::size_t n = x.sliced.cols();
    const int v = cfg.v;
    checkShapes(w, x, v);

    const std::size_t m_groups = m / static_cast<std::size_t>(v);
    const std::size_t n_groups = n / static_cast<std::size_t>(v);
    const std::size_t w_levels = w.sliced.levels();
    const std::size_t x_levels = x.sliced.levels();
    const int w_ho = static_cast<int>(w_levels) - 1;
    const int x_ho = static_cast<int>(x_levels) - 1;
    const int x_ho_shift = x.sliced.hoPlane().shift;
    const bool r_skip = cfg.actSkip == ActSkipMode::RValued;

    AqsStats local;
    local.denseOuterProducts =
        m_groups * n_groups * kk * w_levels * x_levels;
    local.macsPerOuterProduct = static_cast<double>(v) * v;

    MatrixI64 acc(m, n);

    // Offline term b' = r * 2^shift * (row sums of the total weight
    // codes): folded into the bias, zero runtime cost (Eq. (6)).
    std::vector<std::int64_t> b_prime;
    if (r_skip) {
        b_prime.assign(m, 0);
        for (std::size_t row = 0; row < m; ++row) {
            std::int64_t sum = 0;
            for (std::size_t k = 0; k < kk; ++k)
                sum += w.totalCodes(row, k);
            b_prime[row] = sum * (static_cast<std::int64_t>(x.r)
                                  << x_ho_shift);
        }
    }

    std::vector<std::int64_t> wsum(static_cast<std::size_t>(v));
    for (std::size_t mg = 0; mg < m_groups; ++mg) {
        for (std::size_t ng = 0; ng < n_groups; ++ng) {
            std::fill(wsum.begin(), wsum.end(), 0);

            for (std::size_t k = 0; k < kk; ++k) {
                const bool w_comp = w.hoMask(mg, k) != 0;
                const bool x_comp = x.hoMask(k, ng) != 0;

                if (r_skip) {
                    if (!x_comp) {
                        // Eq. (6): accumulate total weight columns for
                        // uncompressed activation vectors; the CS reuses
                        // slices loaded for the bit-slice products.
                        for (int i = 0; i < v; ++i)
                            wsum[static_cast<std::size_t>(i)] +=
                                w.totalCodes(
                                    mg * static_cast<std::size_t>(v) +
                                        static_cast<std::size_t>(i),
                                    k);
                        if (cfg.useEq6)
                            local.compAdds +=
                                static_cast<std::uint64_t>(v) * w_levels;
                    } else if (!cfg.useEq6) {
                        // Eq. (5): compressed columns must be re-loaded
                        // and summed explicitly.
                        local.compAdds +=
                            static_cast<std::uint64_t>(v) * w_levels;
                        local.compExtraEmaNibbles +=
                            static_cast<std::uint64_t>(v) * w_levels;
                    }
                }

                for (std::size_t wl = 0; wl < w_levels; ++wl) {
                    const bool w_is_ho = static_cast<int>(wl) == w_ho;
                    if (w_is_ho && w_comp) {
                        local.skippedOuterProducts += x_levels;
                        continue;
                    }
                    const SlicePlane &wp = w.sliced.planes[wl];
                    for (std::size_t xl = 0; xl < x_levels; ++xl) {
                        const bool x_is_ho = static_cast<int>(xl) == x_ho;
                        if (x_is_ho && x_comp &&
                            cfg.actSkip != ActSkipMode::None) {
                            ++local.skippedOuterProducts;
                            continue;
                        }
                        const SlicePlane &xp = x.sliced.planes[xl];
                        const int shift = wp.shift + xp.shift;
                        ++local.executedOuterProducts;
                        for (int i = 0; i < v; ++i) {
                            const std::int64_t ws =
                                wp.data(mg * v + i, k);
                            for (int j = 0; j < v; ++j) {
                                const std::int64_t xs =
                                    xp.data(k, ng * v + j);
                                acc(mg * v + i, ng * v + j) +=
                                    (ws * xs) << shift;
                            }
                        }
                    }
                }
            }

            if (r_skip) {
                // Compensation outer product (Eq. (6)): 16 multiplies
                // per 4x4 output block:
                //   comp = b' - r * 2^shift * wsum, broadcast over j.
                // When nothing was compressed the term is identically
                // zero (b' = r*sum over all K); hardware performs it
                // unconditionally, matching Table I's constant 16 Mul.
                const std::int64_t r_scaled =
                    static_cast<std::int64_t>(x.r) << x_ho_shift;
                local.compMults += static_cast<std::uint64_t>(v) *
                                   static_cast<std::uint64_t>(v);
                for (int i = 0; i < v; ++i) {
                    const std::int64_t comp =
                        b_prime[mg * v + i] -
                        r_scaled * wsum[static_cast<std::size_t>(i)];
                    for (int j = 0; j < v; ++j)
                        acc(mg * v + i, ng * v + j) += comp;
                }
            }
        }
    }

    // Multiply/add counts follow directly from executed outer products.
    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) *
                  static_cast<std::uint64_t>(v);
    local.adds = local.mults;

    countTraffic(local, w, x, m, kk, w_levels, x_levels, v, 0,
                 n / static_cast<std::size_t>(v));

    if (stats)
        *stats += local;
    return acc;
}

ActivationOperand
concatActivationOperands(std::span<const ActivationOperand *const> ops,
                         const AqsConfig &cfg)
{
    panic_if(ops.empty(), "concat requires at least one operand");
    const ActivationOperand &first = *ops.front();
    const std::size_t kk = first.sliced.rows();
    const std::size_t levels = first.sliced.levels();
    const std::size_t uv = static_cast<std::size_t>(cfg.v);
    const std::size_t kkp = detail::pairCount(kk);
    const std::size_t pw = 2 * uv;

    std::size_t n_total = 0;
    bool have_widened = true;
    bool have_paired = true;
    for (const ActivationOperand *op : ops) {
        const std::size_t n_op = op->sliced.cols();
        panic_if(op->sliced.rows() != kk || op->sliced.levels() != levels,
                 "concat operand shape mismatch: ", op->sliced.rows(),
                 "x", n_op, " levels ", op->sliced.levels(), " vs ", kk,
                 " levels ", levels);
        panic_if(n_op % uv != 0, "concat operand N ", n_op,
                 " not divisible by v=", cfg.v);
        panic_if(op->r != first.r,
                 "concat operands disagree on the skip value r");
        panic_if(op->hoMask.rows() != kk ||
                     op->hoMask.cols() != n_op / uv ||
                     op->streams.size() != n_op / uv,
                 "concat operand mask/streams malformed (prepare with "
                 "prepareActivations*)");
        for (std::size_t l = 0; l < levels; ++l)
            panic_if(op->sliced.planes[l].shift !=
                         first.sliced.planes[l].shift,
                     "concat operands disagree on plane shifts");
        n_total += n_op;
        have_widened =
            have_widened && op->widenedPlanes.size() == levels * kk * n_op;
        have_paired = have_paired &&
                      op->pairedPlanes.size() ==
                          levels * (n_op / uv) * kkp * pw;
    }
    const std::size_t g_total = n_total / uv;

    ActivationOperand out;
    out.r = first.r;
    out.sliced.signedSlices = first.sliced.signedSlices;
    out.sliced.sourceBits = first.sliced.sourceBits;
    out.sliced.loBits = first.sliced.loBits;
    out.sliced.planes.resize(levels);
    out.hoMask = MatrixU8(kk, g_total);
    out.streams.reserve(g_total);
    for (const ActivationOperand *op : ops)
        out.streams.insert(out.streams.end(), op->streams.begin(),
                           op->streams.end());

    // Slice planes + HO mask: row-wise block copies, parallel over K.
    // Chunks write disjoint row segments of pre-sized outputs, so the
    // result is byte-identical for any thread count.
    for (std::size_t l = 0; l < levels; ++l) {
        SlicePlane &plane = out.sliced.planes[l];
        plane.shift = first.sliced.planes[l].shift;
        plane.high = first.sliced.planes[l].high;
        plane.data = Matrix<Slice>(kk, n_total);
        parallelFor(0, kk, [&](std::size_t b, std::size_t e, int) {
            for (std::size_t k = b; k < e; ++k) {
                Slice *dst = plane.data.row(k).data();
                std::size_t off = 0;
                for (const ActivationOperand *op : ops) {
                    const auto src = op->sliced.planes[l].data.row(k);
                    std::copy(src.begin(), src.end(), dst + off);
                    off += src.size();
                }
            }
        });
    }
    parallelFor(0, kk, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t k = b; k < e; ++k) {
            std::uint8_t *dst = out.hoMask.row(k).data();
            std::size_t off = 0;
            for (const ActivationOperand *op : ops) {
                const auto src = op->hoMask.row(k);
                std::copy(src.begin(), src.end(), dst + off);
                off += src.size();
            }
        }
    });

    // Kernel operand caches: concatenable only when every source
    // carries them (the gate depends on the active ISA level at prep
    // time, so a mixed set falls back to on-demand rebuild).
    if (have_widened) {
        out.widenedPlanes.resize(levels * kk * n_total);
        for (std::size_t l = 0; l < levels; ++l) {
            std::int16_t *base = out.widenedPlanes.data() +
                                 l * kk * n_total;
            parallelFor(0, kk, [&](std::size_t b, std::size_t e, int) {
                for (std::size_t k = b; k < e; ++k) {
                    std::int16_t *dst = base + k * n_total;
                    std::size_t off = 0;
                    for (const ActivationOperand *op : ops) {
                        const std::size_t n_op = op->sliced.cols();
                        const std::int16_t *src =
                            op->widenedPlanes.data() + l * kk * n_op +
                            k * n_op;
                        std::copy(src, src + n_op, dst + off);
                        off += n_op;
                    }
                }
            });
        }
    }
    if (have_paired) {
        // Paired layout is [level][n-group][pair][2v]: per level one
        // contiguous block per source operand.
        out.pairedPlanes.resize(levels * g_total * kkp * pw);
        for (std::size_t l = 0; l < levels; ++l) {
            std::int16_t *dst =
                out.pairedPlanes.data() + l * g_total * kkp * pw;
            for (const ActivationOperand *op : ops) {
                const std::size_t g_op = op->sliced.cols() / uv;
                const std::int16_t *src =
                    op->pairedPlanes.data() + l * g_op * kkp * pw;
                std::copy(src, src + g_op * kkp * pw, dst);
                dst += g_op * kkp * pw;
            }
        }
    }
    return out;
}

WeightCountingCache
buildWeightCountingCache(const WeightOperand &w, int v)
{
    const std::size_t uv = static_cast<std::size_t>(v);
    const std::size_t m_groups = w.sliced.rows() / uv;
    const std::size_t kk = w.sliced.cols();
    WeightCountingCache out;
    out.wcol.assign(kk, 0);
    for (std::size_t mg = 0; mg < m_groups; ++mg) {
        const std::uint8_t *wmask = w.hoMask.row(mg).data();
        for (std::size_t k = 0; k < kk; ++k) {
            if (wmask[k] == 0) {
                ++out.wdSum;
                ++out.wcol[k];
            }
        }
    }
    return out;
}

namespace {

AqsStats
countStatsRange(const WeightOperand &w, const ActivationOperand &x,
                const AqsConfig &cfg, const WeightCountingCache &w_counts,
                std::size_t ng_begin, std::size_t ng_end)
{
    const int v = cfg.v;
    const std::size_t m = w.sliced.rows();
    const std::size_t kk = w.sliced.cols();
    const std::size_t uv = static_cast<std::size_t>(v);
    const std::size_t m_groups = m / uv;
    const std::size_t n_groups = ng_end - ng_begin;
    const std::size_t w_levels = w.sliced.levels();
    const std::size_t x_levels = x.sliced.levels();
    const bool x_identity = cfg.actSkip == ActSkipMode::None;
    const bool r_skip = cfg.actSkip == ActSkipMode::RValued;
    const std::uint64_t wd_sum = w_counts.wdSum;

    // Activation side over the requested column bands: dense-step
    // counts and the intersection sum over all (mg, ng) tiles.
    std::uint64_t nxd_sum = 0;
    std::uint64_t inter_sum = 0;
    if (x_identity) {
        nxd_sum = static_cast<std::uint64_t>(n_groups) * kk;
        inter_sum = static_cast<std::uint64_t>(n_groups) * wd_sum;
    } else {
        for (std::size_t ng = ng_begin; ng < ng_end; ++ng) {
            for (std::size_t k = 0; k < kk; ++k) {
                if (x.hoMask(k, ng) == 0) {
                    ++nxd_sum;
                    inter_sum += w_counts.wcol[k];
                }
            }
        }
    }

    AqsStats local;
    local.denseOuterProducts = m_groups * n_groups * kk * w_levels *
                               x_levels;
    local.macsPerOuterProduct = static_cast<double>(v) * v;

    // Per (mg, ng) tile the kernels run (w_levels-1)(x_levels-1) full
    // passes, (x_levels-1) weight-list passes, (w_levels-1)
    // activation-list passes and one intersection pass; summed in
    // closed form here (wd_sum and inter_sum are already summed over
    // m-bands, nxd_sum over column bands).
    local.executedOuterProducts =
        static_cast<std::uint64_t>(m_groups) * n_groups *
            (w_levels - 1) * (x_levels - 1) * kk +
        static_cast<std::uint64_t>(n_groups) * (x_levels - 1) * wd_sum +
        static_cast<std::uint64_t>(m_groups) * (w_levels - 1) * nxd_sum +
        inter_sum;
    local.skippedOuterProducts =
        local.denseOuterProducts - local.executedOuterProducts;
    local.mults = local.executedOuterProducts *
                  static_cast<std::uint64_t>(v) *
                  static_cast<std::uint64_t>(v);
    local.adds = local.mults;

    if (r_skip) {
        local.compMults = static_cast<std::uint64_t>(m_groups) *
                          n_groups * static_cast<std::uint64_t>(v) *
                          static_cast<std::uint64_t>(v);
        if (cfg.useEq6) {
            local.compAdds = static_cast<std::uint64_t>(m_groups) *
                             static_cast<std::uint64_t>(v) * w_levels *
                             nxd_sum;
        } else {
            const std::uint64_t n_xc =
                static_cast<std::uint64_t>(n_groups) * kk - nxd_sum;
            local.compAdds = static_cast<std::uint64_t>(m_groups) *
                             static_cast<std::uint64_t>(v) * w_levels *
                             n_xc;
            local.compExtraEmaNibbles = local.compAdds;
        }
    }

    countTraffic(local, w, x, m, kk, w_levels, x_levels, v, ng_begin,
                 ng_end);
    return local;
}

} // namespace

AqsStats
aqsCountStats(const WeightOperand &w, const ActivationOperand &x,
              const AqsConfig &cfg, std::size_t ng_begin,
              std::size_t ng_end)
{
    return aqsCountStats(w, x, cfg, buildWeightCountingCache(w, cfg.v),
                         ng_begin, ng_end);
}

AqsStats
aqsCountStats(const WeightOperand &w, const ActivationOperand &x,
              const AqsConfig &cfg, const WeightCountingCache &wcache,
              std::size_t ng_begin, std::size_t ng_end)
{
    checkShapes(w, x, cfg.v);
    const std::size_t uv = static_cast<std::size_t>(cfg.v);
    const std::size_t n_groups_all = x.sliced.cols() / uv;
    if (ng_end > n_groups_all)
        ng_end = n_groups_all;
    panic_if(ng_begin > ng_end, "aqsCountStats range [", ng_begin, ", ",
             ng_end, ") is inverted");
    panic_if(wcache.wcol.size() != w.sliced.cols(),
             "weight counting cache covers ", wcache.wcol.size(),
             " steps, operand has ", w.sliced.cols());
    return countStatsRange(w, x, cfg, wcache, ng_begin, ng_end);
}

std::vector<AqsStats>
aqsCountStatsBatch(const WeightOperand &w, const ActivationOperand &x,
                   const AqsConfig &cfg,
                   std::span<const std::size_t> group_offsets)
{
    return aqsCountStatsBatch(w, x, cfg,
                              buildWeightCountingCache(w, cfg.v),
                              group_offsets);
}

std::vector<AqsStats>
aqsCountStatsBatch(const WeightOperand &w, const ActivationOperand &x,
                   const AqsConfig &cfg, const WeightCountingCache &wcache,
                   std::span<const std::size_t> group_offsets)
{
    checkShapes(w, x, cfg.v);
    panic_if(group_offsets.size() < 2,
             "aqsCountStatsBatch needs at least one range");
    const std::size_t uv = static_cast<std::size_t>(cfg.v);
    const std::size_t n_groups_all = x.sliced.cols() / uv;
    panic_if(group_offsets.back() > n_groups_all,
             "aqsCountStatsBatch offsets exceed N/v=", n_groups_all);
    panic_if(wcache.wcol.size() != w.sliced.cols(),
             "weight counting cache covers ", wcache.wcol.size(),
             " steps, operand has ", w.sliced.cols());
    std::vector<AqsStats> out;
    out.reserve(group_offsets.size() - 1);
    for (std::size_t i = 0; i + 1 < group_offsets.size(); ++i) {
        panic_if(group_offsets[i] > group_offsets[i + 1],
                 "aqsCountStatsBatch offsets not monotone");
        out.push_back(countStatsRange(w, x, cfg, wcache,
                                      group_offsets[i],
                                      group_offsets[i + 1]));
    }
    return out;
}

} // namespace panacea
