/**
 * @file
 * AVX512-VNNI pair-pass micro-kernels. Identical data movement to the
 * AVX-512 variants (pair_pass_avx512.cpp), but every
 * madd+add accumulate pair is one vpdpwssd (_mm512_dpwssd_epi32):
 * acc += madd(w, x) in a single instruction, halving the accumulate
 * uops on the hot loops. vpdpwssd is non-saturating - each dword lane
 * wraps mod 2^32 exactly like pmaddwd followed by paddd - so outputs
 * stay bit-identical to every other tier. This translation unit is the
 * only one compiled with -mavx512vnni (gated on compiler support; see
 * CMakeLists.txt) and its symbols are only reachable through the
 * dispatch table after a cpuid + xgetbv check. Tails use plain
 * AVX-512/SSE madd+add (bit-identical) so the TU needs no AVX512VL.
 */

#include "core/pair_pass.h"

#if defined(PANACEA_HAVE_VNNI_KERNELS)

#include <immintrin.h>

// GCC's unmasked AVX-512 wrappers (_mm512_shuffle_epi32,
// _mm512_inserti32x4, ...) pass _mm512_undefined_epi32() as the
// masked-out source operand, tripping -Wmaybe-uninitialized at every
// inline site (GCC PR 105593). The lanes are fully overwritten; the
// warning is a false positive, suppressed for this TU only.
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace panacea {
namespace detail {

/**
 * v = 4 pair pass, 512-bit VNNI: same eight-steps-per-iteration
 * schedule as pairPass4Avx512, but the four madd+add accumulates are
 * four vpdpwssd ops. Exact int32 arithmetic, bit-identical to the
 * scalar path.
 */
void
pairPass4Vnni(const std::int16_t *wp, const std::int16_t *xp,
              std::size_t n, std::size_t ng_off, const std::uint32_t *ks,
              std::size_t nk, bool identity, std::int32_t *pacc)
{
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    const auto pair128 = [](const std::int16_t *a, const std::int16_t *b) {
        return _mm_unpacklo_epi16(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(a)),
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(b)));
    };
    std::size_t t = 0;
    for (; t + 8 <= nk; t += 8) {
        std::size_t k[8];
        for (int s = 0; s < 8; ++s)
            k[s] = identity ? t + static_cast<std::size_t>(s) : ks[t + s];
        __m512i vb = _mm512_zextsi128_si512(
            pair128(xp + k[0] * n + ng_off, xp + k[1] * n + ng_off));
        vb = _mm512_inserti32x4(
            vb, pair128(xp + k[2] * n + ng_off, xp + k[3] * n + ng_off),
            1);
        vb = _mm512_inserti32x4(
            vb, pair128(xp + k[4] * n + ng_off, xp + k[5] * n + ng_off),
            2);
        vb = _mm512_inserti32x4(
            vb, pair128(xp + k[6] * n + ng_off, xp + k[7] * n + ng_off),
            3);
        __m512i wab = _mm512_zextsi128_si512(
            pair128(wp + k[0] * 4, wp + k[1] * 4));
        wab = _mm512_inserti32x4(
            wab, pair128(wp + k[2] * 4, wp + k[3] * 4), 1);
        wab = _mm512_inserti32x4(
            wab, pair128(wp + k[4] * 4, wp + k[5] * 4), 2);
        wab = _mm512_inserti32x4(
            wab, pair128(wp + k[6] * 4, wp + k[7] * 4), 3);
        acc0 = _mm512_dpwssd_epi32(
            acc0, _mm512_shuffle_epi32(wab, _MM_PERM_AAAA), vb);
        acc1 = _mm512_dpwssd_epi32(
            acc1, _mm512_shuffle_epi32(wab, _MM_PERM_BBBB), vb);
        acc2 = _mm512_dpwssd_epi32(
            acc2, _mm512_shuffle_epi32(wab, _MM_PERM_CCCC), vb);
        acc3 = _mm512_dpwssd_epi32(
            acc3, _mm512_shuffle_epi32(wab, _MM_PERM_DDDD), vb);
    }
    const auto fold = [](__m512i a) {
        const __m256i s = _mm256_add_epi32(
            _mm512_castsi512_si256(a), _mm512_extracti64x4_epi64(a, 1));
        return _mm_add_epi32(_mm256_castsi256_si128(s),
                             _mm256_extracti128_si256(s, 1));
    };
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 0), fold(acc0));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 4), fold(acc1));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 8), fold(acc2));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 12), fold(acc3));
    for (; t < nk; ++t) {
        const std::size_t k0 = identity ? t : ks[t];
        const std::int16_t *wv = wp + k0 * 4;
        const std::int16_t *xr = xp + k0 * n + ng_off;
        for (int i = 0; i < 4; ++i)
            for (int j = 0; j < 4; ++j)
                pacc[i * 4 + j] += static_cast<std::int32_t>(wv[i]) *
                                   static_cast<std::int32_t>(xr[j]);
    }
}

/**
 * Streaming v = 4 pair pass, 512-bit VNNI: two 64-byte loads plus four
 * shuffle/vpdpwssd pairs retire EIGHT reduction steps per iteration
 * over pre-interleaved operands (see PairStream4Fn). The trailing < 4
 * pairs fall through plain AVX-512 256-bit and 128-bit madd+add steps
 * (no AVX512VL vpdpwssd needed; same exact sums). Bit-identical to the
 * gather kernels over the same dense steps.
 */
void
pairStream4Vnni(const std::int16_t *wq, const std::int16_t *xq,
                std::size_t pairs, std::int32_t *pacc)
{
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    std::size_t p = 0;
    for (; p + 4 <= pairs; p += 4) {
        const __m512i vb = _mm512_loadu_si512(xq + p * 8);
        const __m512i wab = _mm512_loadu_si512(wq + p * 8);
        acc0 = _mm512_dpwssd_epi32(
            acc0, _mm512_shuffle_epi32(wab, _MM_PERM_AAAA), vb);
        acc1 = _mm512_dpwssd_epi32(
            acc1, _mm512_shuffle_epi32(wab, _MM_PERM_BBBB), vb);
        acc2 = _mm512_dpwssd_epi32(
            acc2, _mm512_shuffle_epi32(wab, _MM_PERM_CCCC), vb);
        acc3 = _mm512_dpwssd_epi32(
            acc3, _mm512_shuffle_epi32(wab, _MM_PERM_DDDD), vb);
    }
    const auto fold512 = [](__m512i a) {
        const __m256i s = _mm256_add_epi32(
            _mm512_castsi512_si256(a), _mm512_extracti64x4_epi64(a, 1));
        return _mm_add_epi32(_mm256_castsi256_si128(s),
                             _mm256_extracti128_si256(s, 1));
    };
    __m128i r0 = fold512(acc0);
    __m128i r1 = fold512(acc1);
    __m128i r2 = fold512(acc2);
    __m128i r3 = fold512(acc3);
    if (p + 2 <= pairs) {
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(xq + p * 8));
        const __m256i wab = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(wq + p * 8));
        const auto fold256 = [](__m256i a) {
            return _mm_add_epi32(_mm256_castsi256_si128(a),
                                 _mm256_extracti128_si256(a, 1));
        };
        r0 = _mm_add_epi32(
            r0, fold256(_mm256_madd_epi16(
                    _mm256_shuffle_epi32(wab, 0x00), vb)));
        r1 = _mm_add_epi32(
            r1, fold256(_mm256_madd_epi16(
                    _mm256_shuffle_epi32(wab, 0x55), vb)));
        r2 = _mm_add_epi32(
            r2, fold256(_mm256_madd_epi16(
                    _mm256_shuffle_epi32(wab, 0xAA), vb)));
        r3 = _mm_add_epi32(
            r3, fold256(_mm256_madd_epi16(
                    _mm256_shuffle_epi32(wab, 0xFF), vb)));
        p += 2;
    }
    if (p < pairs) {
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(xq + p * 8));
        const __m128i wab = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(wq + p * 8));
        r0 = _mm_add_epi32(
            r0, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0x00), vb));
        r1 = _mm_add_epi32(
            r1, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0x55), vb));
        r2 = _mm_add_epi32(
            r2, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0xAA), vb));
        r3 = _mm_add_epi32(
            r3, _mm_madd_epi16(_mm_shuffle_epi32(wab, 0xFF), vb));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 0), r0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 4), r1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 8), r2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(pacc + 12), r3);
}

/**
 * Generic-v streaming pair pass, 512-bit VNNI: the accumulator block of
 * a 16-column row stays in one zmm register and every step pair is one
 * vpdpwssd (vs madd+add in pairStreamGenericAvx512). Narrower column
 * remainders keep the plain AVX-512 256/128-bit and scalar tails.
 * Exact int32 arithmetic, bit-identical to the gather kernels over the
 * same dense steps.
 */
void
pairStreamGenericVnni(const std::int16_t *wq, const std::int16_t *xq,
                      std::size_t pairs, int v, std::int32_t *pacc)
{
    const std::size_t pw = 2 * static_cast<std::size_t>(v);
    const int j16 = v & ~15; // widest multiple-of-16 column prefix
    const int j8 = v & ~7;
    const int j4 = v & ~3;
    for (int i = 0; i < v; ++i) {
        std::int32_t *prow = pacc + i * v;
        for (int j = 0; j < j16; j += 16) {
            __m512i acc = _mm512_setzero_si512();
            for (std::size_t p = 0; p < pairs; ++p) {
                std::int32_t wpair;
                __builtin_memcpy(&wpair, wq + p * pw + 2 * i,
                                 sizeof wpair);
                const __m512i xb = _mm512_loadu_si512(xq + p * pw +
                                                      2 * j);
                acc = _mm512_dpwssd_epi32(acc, _mm512_set1_epi32(wpair),
                                          xb);
            }
            _mm512_storeu_si512(prow + j, acc);
        }
        if (j8 > j16) {
            __m256i acc = _mm256_setzero_si256();
            for (std::size_t p = 0; p < pairs; ++p) {
                std::int32_t wpair;
                __builtin_memcpy(&wpair, wq + p * pw + 2 * i,
                                 sizeof wpair);
                const __m256i xb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(xq + p * pw +
                                                      2 * j16));
                acc = _mm256_add_epi32(
                    acc,
                    _mm256_madd_epi16(_mm256_set1_epi32(wpair), xb));
            }
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(prow + j16),
                                acc);
        }
        if (j4 > j8) {
            __m128i acc = _mm_setzero_si128();
            for (std::size_t p = 0; p < pairs; ++p) {
                std::int32_t wpair;
                __builtin_memcpy(&wpair, wq + p * pw + 2 * i,
                                 sizeof wpair);
                const __m128i xb = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(xq + p * pw +
                                                      2 * j8));
                acc = _mm_add_epi32(
                    acc, _mm_madd_epi16(_mm_set1_epi32(wpair), xb));
            }
            _mm_storeu_si128(reinterpret_cast<__m128i *>(prow + j8),
                             acc);
        }
        for (int j = j4; j < v; ++j) {
            std::int32_t sum = 0;
            for (std::size_t p = 0; p < pairs; ++p) {
                const std::int16_t *wr = wq + p * pw + 2 * i;
                const std::int16_t *xr = xq + p * pw + 2 * j;
                sum += static_cast<std::int32_t>(wr[0]) * xr[0] +
                       static_cast<std::int32_t>(wr[1]) * xr[1];
            }
            prow[j] = sum;
        }
    }
}

} // namespace detail
} // namespace panacea

#endif // PANACEA_HAVE_VNNI_KERNELS
