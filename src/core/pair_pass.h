/**
 * @file
 * Internal micro-kernel interface of the bit-slice GEMM engines: the
 * "pair pass" - one branch-free sweep of a (weight-plane,
 * activation-plane) combination over a skip list of dense reduction
 * steps - and the runtime ISA-dispatch table that selects its widest
 * available implementation (scalar / SSE2 / AVX2 / AVX-512 /
 * AVX512-VNNI).
 *
 * Contract shared by every variant (and relied on for cross-ISA
 * parity):
 *
 *  - `wp` is the band's packed weight tile for one slice plane:
 *    wp[k * v + i] is the widened (int16) slice of output row i at
 *    reduction step k, contiguous per step.
 *  - `xp` is the widened (int16) activation plane, row-major [k][n];
 *    the pass reads the v elements at xp[k * n + ng_off].
 *  - `ks`/`nk`/`identity` name the dense reduction steps: when
 *    `identity` is true the steps are 0..nk-1 and `ks` may be null,
 *    otherwise ks[0..nk) holds them in increasing order.
 *  - `pacc` is the v x v row-major int32 pair accumulator. The pass
 *    OVERWRITES it with sum_k w[k][i] * x[k][j] (no positional shift;
 *    the caller applies `<< shift` when merging into the int64 tile).
 *  - Arithmetic must be exact: every pacc element is the exact int32
 *    sum of exact int16 x int16 products. Integer addition commutes,
 *    so any vectorization order yields bit-identical results; callers
 *    guarantee no int32 overflow (see the kk guards in aqs_gemm.cpp /
 *    legacy_gemm.cpp).
 *
 * The AVX2/AVX-512 translation units are compiled with their ISA flags
 * only when the compiler supports them (PANACEA_HAVE_*_KERNELS);
 * pairPassKernels() additionally clamps to what the host CPU reports,
 * so dispatch is always safe.
 */

#ifndef PANACEA_CORE_PAIR_PASS_H
#define PANACEA_CORE_PAIR_PASS_H

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace panacea {
namespace detail {

/** Fixed v = 4 pair pass (the paper-default vector length). */
using PairPass4Fn = void (*)(const std::int16_t *wp,
                             const std::int16_t *xp, std::size_t n,
                             std::size_t ng_off, const std::uint32_t *ks,
                             std::size_t nk, bool identity,
                             std::int32_t *pacc);

/** Runtime-v pair pass (1 <= v <= 16). */
using PairPassGenericFn = void (*)(const std::int16_t *wp,
                                   const std::int16_t *xp, std::size_t n,
                                   std::size_t ng_off,
                                   const std::uint32_t *ks, std::size_t nk,
                                   bool identity, int v,
                                   std::int32_t *pacc);

/**
 * Streaming v = 4 pair pass over PRE-INTERLEAVED operands. `wq` and
 * `xq` hold `pairs` step pairs contiguously, 8 int16 each:
 * wq[p*8 + 2*i + s] is the weight slice of output row i at reduction
 * step 2p+s, xq[p*8 + 2*j + s] the activation slice of output column j
 * (an odd trailing step is padded with zeros on both operands). The
 * gather kernels' per-step loads and interleaves become one wide
 * contiguous load per operand, which is what makes the AVX2/AVX-512
 * tiers beat SSE2 on dense passes. The engines substitute a
 * masked-dense stream for a skip-list gather when the list is dense
 * (compressed steps are pre-zeroed in wq/xq, so their products vanish
 * and the sum is bit-identical to the gathered one). OVERWRITES pacc.
 */
using PairStream4Fn = void (*)(const std::int16_t *wq,
                               const std::int16_t *xq, std::size_t pairs,
                               std::int32_t *pacc);

/**
 * Streaming runtime-v (1 <= v <= 16) pair pass over PRE-INTERLEAVED
 * operands: the generic-v counterpart of PairStream4Fn. `wq` and `xq`
 * hold `pairs` step pairs contiguously, 2v int16 each:
 * wq[p*2v + 2*i + s] is the weight slice of output row i at reduction
 * step 2p+s, xq[p*2v + 2*j + s] the activation slice of output column
 * j (an odd trailing step is padded with zeros on both operands; the
 * same layout pairedSlicePlanes / packWeightBandPaired emit for any
 * v). Each pmaddwd lane fuses the two steps of one (i, j) element, so
 * the pass is branch-free and indirection-free like the v = 4 stream.
 * OVERWRITES pacc (v x v row-major int32).
 */
using PairStreamGenericFn = void (*)(const std::int16_t *wq,
                                     const std::int16_t *xq,
                                     std::size_t pairs, int v,
                                     std::int32_t *pacc);

/** One row of the ISA-dispatch table. */
struct PairPassKernels
{
    IsaLevel level = IsaLevel::Scalar; ///< nominal tier of this row
    PairPass4Fn pass4 = nullptr;
    PairPassGenericFn passGeneric = nullptr;
    /**
     * Null below Avx2: the SSE2 tier stays exactly PR 1's gather
     * kernel, which keeps the per-ISA bench comparison honest and the
     * paired-operand build optional.
     */
    PairStream4Fn stream4 = nullptr;
    /**
     * Generic-v streaming pass. Populated from the SSE2 tier up (the
     * pmaddwd pair-fuse is what makes a dense masked stream beat the
     * scalar gather); null in the scalar row, so the scalar tier stays
     * a pure gather engine and the paired-operand build optional.
     */
    PairStreamGenericFn streamGeneric = nullptr;
};

/**
 * The dispatch table row for an ISA level, clamped to
 * min(detectedIsaLevel(), compiledIsaLevel()). A tier without its own
 * variant inherits the next-lower implementation (e.g. the SSE2 row
 * keeps the scalar generic-v kernel), so every returned row is fully
 * populated and every function pointer is runnable on this host.
 */
const PairPassKernels &pairPassKernels(IsaLevel level);

/**
 * Whether this dispatch row can run a streaming (masked-dense) pass
 * for vector length v - the ONE predicate behind both the
 * paired-operand precompute gate at prep time and the stream_ok check
 * inside the GEMM engines. Keeping it here (next to the table it
 * describes) is what guarantees a new tier cannot be wired into one
 * check but not the other: both sides see the same row and the same
 * v condition. The generic slot is bounded by the blocked micro-tile
 * limit (v <= 16); above it the engines fall back to scalar bands
 * that never stream.
 */
inline bool
streamKernelsRunnable(const PairPassKernels &kern, int v)
{
    return v == 4 ? kern.stream4 != nullptr
                  : v <= 16 && kern.streamGeneric != nullptr;
}

// Per-ISA implementations. Declared unconditionally; the AVX2/AVX-512
// symbols are only referenced (and defined) when the matching
// PANACEA_HAVE_*_KERNELS macro is set at configure time.
void pairPass4Scalar(const std::int16_t *wp, const std::int16_t *xp,
                     std::size_t n, std::size_t ng_off,
                     const std::uint32_t *ks, std::size_t nk,
                     bool identity, std::int32_t *pacc);
void pairPassGenericScalar(const std::int16_t *wp, const std::int16_t *xp,
                           std::size_t n, std::size_t ng_off,
                           const std::uint32_t *ks, std::size_t nk,
                           bool identity, int v, std::int32_t *pacc);
void pairPass4Sse2(const std::int16_t *wp, const std::int16_t *xp,
                   std::size_t n, std::size_t ng_off,
                   const std::uint32_t *ks, std::size_t nk, bool identity,
                   std::int32_t *pacc);
void pairStreamGenericSse2(const std::int16_t *wq, const std::int16_t *xq,
                           std::size_t pairs, int v, std::int32_t *pacc);
void pairPass4Avx2(const std::int16_t *wp, const std::int16_t *xp,
                   std::size_t n, std::size_t ng_off,
                   const std::uint32_t *ks, std::size_t nk, bool identity,
                   std::int32_t *pacc);
void pairStream4Avx2(const std::int16_t *wq, const std::int16_t *xq,
                     std::size_t pairs, std::int32_t *pacc);
void pairPassGenericAvx2(const std::int16_t *wp, const std::int16_t *xp,
                         std::size_t n, std::size_t ng_off,
                         const std::uint32_t *ks, std::size_t nk,
                         bool identity, int v, std::int32_t *pacc);
void pairStreamGenericAvx2(const std::int16_t *wq, const std::int16_t *xq,
                           std::size_t pairs, int v, std::int32_t *pacc);
void pairPass4Avx512(const std::int16_t *wp, const std::int16_t *xp,
                     std::size_t n, std::size_t ng_off,
                     const std::uint32_t *ks, std::size_t nk,
                     bool identity, std::int32_t *pacc);
void pairStream4Avx512(const std::int16_t *wq, const std::int16_t *xq,
                       std::size_t pairs, std::int32_t *pacc);
void pairPassGenericAvx512(const std::int16_t *wp, const std::int16_t *xp,
                           std::size_t n, std::size_t ng_off,
                           const std::uint32_t *ks, std::size_t nk,
                           bool identity, int v, std::int32_t *pacc);
void pairStreamGenericAvx512(const std::int16_t *wq,
                             const std::int16_t *xq, std::size_t pairs,
                             int v, std::int32_t *pacc);
void pairPass4Vnni(const std::int16_t *wp, const std::int16_t *xp,
                   std::size_t n, std::size_t ng_off,
                   const std::uint32_t *ks, std::size_t nk, bool identity,
                   std::int32_t *pacc);
void pairStream4Vnni(const std::int16_t *wq, const std::int16_t *xq,
                     std::size_t pairs, std::int32_t *pacc);
void pairStreamGenericVnni(const std::int16_t *wq, const std::int16_t *xq,
                           std::size_t pairs, int v, std::int32_t *pacc);

} // namespace detail
} // namespace panacea

#endif // PANACEA_CORE_PAIR_PASS_H
