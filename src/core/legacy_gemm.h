/**
 * @file
 * The previous-generation bit-slice GEMM of Sibia (paper §II-B, Fig. 4):
 * symmetric quantization on both operands, SBR slicing on both, and
 * skipping of all-zero HO slice-vectors on ONE operand side (hardware
 * exploits max(rho_w, rho_x), not both). No compensation is needed since
 * the skipped value is zero.
 *
 * This engine is both the functional reference for the Sibia baseline
 * simulator and the "previous bit-slice GEMM" series of Fig. 5(b) and
 * Fig. 14.
 */

#ifndef PANACEA_CORE_LEGACY_GEMM_H
#define PANACEA_CORE_LEGACY_GEMM_H

#include <cstdint>

#include "slicing/slice_tensor.h"
#include "util/matrix.h"

namespace panacea {

/** Which operand's zero HO vectors the legacy engine skips. */
enum class SibiaSkipSide
{
    Weight,
    Activation,
    Auto,   ///< pick the side with the larger HO vector sparsity
};

/** Execution statistics of one legacy bit-slice GEMM call. */
struct LegacyStats
{
    std::uint64_t denseOuterProducts = 0;
    std::uint64_t executedOuterProducts = 0;
    std::uint64_t skippedOuterProducts = 0;
    std::uint64_t mults = 0;
    std::uint64_t adds = 0;
    std::uint64_t emaNibbles = 0;  ///< dense DRAM format (no compression)
    double macsPerOuterProduct = 16.0; ///< v * v (dense-OP-weighted merge)
    double rhoW = 0.0;             ///< measured weight HO vector sparsity
    double rhoX = 0.0;             ///< measured activation HO vector sparsity
    bool skippedWeightSide = false;

    /** Fraction of dense bit-slice MACs eliminated. */
    double macReduction() const;

    /** Accumulate another stats record. */
    LegacyStats &operator+=(const LegacyStats &other);
};

/**
 * Execute the legacy bit-slice GEMM on SBR-sliced operands.
 *
 * Preconditions: M and N divisible by v; x.rows() == w.cols(). The
 * packed pair-pass kernel runs for v <= 16 and K < 2^25 (the int32
 * pair-accumulator exactness domain for |slice| <= 8 operands) and
 * falls back to a scalar band outside it. Parallel over the shared
 * pool and vectorized per the active ISA level (util/cpu_features.h);
 * results and statistics are bit-identical for every thread count and
 * ISA level, and always equal the dense intGemm of the reconstructed
 * codes (parity-checked in tests/test_kernel_parity.cpp).
 *
 * @param w SBR-sliced symmetric weight codes (M x K)
 * @param x SBR-sliced symmetric activation codes (K x N)
 * @param v slice-vector length
 * @param side which operand's sparsity to exploit
 * @return the bit-exact integer accumulator W * x.
 */
MatrixI64 legacyBitsliceGemm(const SlicedMatrix &w, const SlicedMatrix &x,
                             int v, SibiaSkipSide side,
                             LegacyStats *stats = nullptr);

} // namespace panacea

#endif // PANACEA_CORE_LEGACY_GEMM_H
