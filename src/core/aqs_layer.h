/**
 * @file
 * Layer-level public API: the full Panacea PTQ pipeline of paper Fig. 6
 * for one linear layer. calibrate() runs the PTQ calibration (weight
 * quantization, activation range estimation, ZPM, DBS classification and
 * bias folding); forward() runs the AQS-GEMM inference path.
 *
 * This is the API a downstream user adopts:
 *
 *   auto layer = AqsLinearLayer::calibrate(w, bias, calib_batches, opts);
 *   MatrixF y = layer.forward(x, &stats);
 */

#ifndef PANACEA_CORE_AQS_LAYER_H
#define PANACEA_CORE_AQS_LAYER_H

#include <span>
#include <vector>

#include "core/aqs_gemm.h"
#include "quant/calibration.h"
#include "util/arena.h"
#include "quant/dbs.h"
#include "quant/gemm_quant.h"
#include "quant/quant_params.h"

namespace panacea {

/** End-to-end pipeline options (calibration + GEMM engine). */
struct AqsPipelineOptions
{
    int weightBits = 7;   ///< (3n+4)-bit symmetric weights
    int actBits = 8;      ///< (4k+4)-bit asymmetric activations
    bool enableZpm = true;
    bool enableDbs = true;
    /** Extension: histogram-aware zero-point phase (see zpm.h). */
    bool histAwareZpm = false;
    double dbsTargetMass = 0.90;
    CalibrationPolicy calibPolicy = CalibrationPolicy::MinMax;
    double calibTailPct = 0.1;   ///< percentile-policy tail mass
    AqsConfig gemm;              ///< engine configuration
};

/**
 * One calibrated linear layer running on the AQS-GEMM engine.
 */
class AqsLinearLayer
{
  public:
    /**
     * Run the PTQ calibration of Fig. 6.
     *
     * @param w           float weight matrix (M x K)
     * @param bias        float bias (length M, may be empty)
     * @param calib_acts  calibration activation batches (each K x N)
     * @param opts        pipeline options
     */
    static AqsLinearLayer calibrate(const MatrixF &w,
                                    std::span<const float> bias,
                                    std::span<const MatrixF> calib_acts,
                                    const AqsPipelineOptions &opts);

    /**
     * Rebuild a layer from the state calibrate() produced, WITHOUT
     * re-running calibration or operand preparation: the
     * deserialization entry point of the compiled-model format
     * (serve/model_serialize.h). The parts must come from one
     * calibrated layer; a layer restored from its own state is
     * behaviourally byte-identical to the original (same outputs, same
     * AqsStats). The LO slice counts are re-derived from the bit
     * widths in `opts`, exactly as calibrate() derives them.
     */
    static AqsLinearLayer restore(const AqsPipelineOptions &opts,
                                  const QuantParams &weight_params,
                                  const QuantParams &act_params,
                                  const DbsDecision &dbs,
                                  WeightOperand weight_op,
                                  ArenaVec<std::int64_t> folded_bias);

    /** Quantize, slice and multiply one activation; returns float. */
    MatrixF forward(const MatrixF &x, AqsStats *stats = nullptr) const;

    /**
     * Run on pre-quantized activation codes; returns the integer
     * accumulator including the folded bias (Eq. (3)).
     */
    MatrixI64 forwardCodes(const MatrixI32 &x_codes,
                           AqsStats *stats = nullptr) const;

    /**
     * Run the engine on an ALREADY-PREPARED activation operand and
     * return the integer accumulator including the folded bias: the
     * operand-reuse entry point of the serving runtime (src/serve/),
     * which prepares/concatenates operands ahead of execution so a
     * batch GEMM never re-slices and prep of batch i+1 can overlap the
     * GEMM of batch i. forwardCodes() is exactly prepareInput() +
     * forwardPrepared().
     */
    MatrixI64 forwardPrepared(const ActivationOperand &x_op,
                              AqsStats *stats = nullptr) const;

    /**
     * One full layer step on a prepared operand: forwardPrepared() +
     * dequantizeOutput() in a single call, returning the float
     * output. The single-layer convenience for callers that do not
     * need the two stages separated (the serving scheduler's
     * ServedModel::forwardPreparedStep splits them so its GEMM mutex
     * scopes the GEMM only, and is guaranteed bit-equal to this call
     * per layer - tests/test_serve_continuous.cpp). Both stages are
     * column-blocked, so the step inherits aqsGemm()'s column-slice
     * determinism.
     */
    MatrixF forwardPreparedStep(const ActivationOperand &x_op,
                                AqsStats *stats = nullptr) const;

    /**
     * Counting-only twin of forwardPrepared() over the output column
     * groups [ng_begin, ng_end): the exact statistics a GEMM over just
     * those columns would record (see aqsCountStats()). The serving
     * engine uses it to attribute bit-exact per-request statistics out
     * of one batched call.
     */
    AqsStats countStats(const ActivationOperand &x_op,
                        std::size_t ng_begin = 0,
                        std::size_t ng_end =
                            static_cast<std::size_t>(-1)) const;

    /** Dequantize an accumulator from forwardCodes/forwardPrepared. */
    MatrixF dequantizeOutput(const MatrixI64 &acc) const;

    /** Quantize a float activation with this layer's parameters. */
    MatrixI32 quantizeInput(const MatrixF &x) const;

    /** Prepare (slice + compress) quantized input codes. */
    ActivationOperand prepareInput(const MatrixI32 &x_codes) const;

    /** @return weight quantization parameters. */
    const QuantParams &weightParams() const { return wParams_; }
    /** @return activation quantization parameters (post ZPM/DBS). */
    const QuantParams &activationParams() const { return xParams_; }
    /** @return the DBS decision taken at calibration. */
    const DbsDecision &dbsDecision() const { return dbs_; }
    /** @return the prepared weight operand. */
    const WeightOperand &weights() const { return weightOp_; }
    /** @return the folded bias b' of Eq. (3) (length M). */
    std::span<const std::int64_t> foldedBias() const
    {
        return foldedBias_;
    }
    /** @return number of weight LO slices n. */
    int weightLoSlices() const { return n_; }
    /** @return number of activation LO slices k. */
    int actLoSlices() const { return k_; }
    /** @return the engine configuration. */
    const AqsConfig &config() const { return opts_.gemm; }
    /** @return pipeline options used at calibration. */
    const AqsPipelineOptions &options() const { return opts_; }

  private:
    AqsPipelineOptions opts_;
    QuantParams wParams_;
    QuantParams xParams_;
    DbsDecision dbs_;
    int n_ = 1;   ///< weight LO slices
    int k_ = 1;   ///< activation LO slices
    WeightOperand weightOp_;
    // Own-or-view backing: calibrate() owns, the zero-copy loader
    // views into the mapped compiled-model file (util/arena.h).
    ArenaVec<std::int64_t> foldedBias_;
};

} // namespace panacea

#endif // PANACEA_CORE_AQS_LAYER_H
