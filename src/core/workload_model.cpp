#include "core/workload_model.h"

#include <algorithm>

#include "util/logging.h"

namespace panacea {

namespace {

void
checkRho(double rho_w, double rho_x)
{
    panic_if(rho_w < 0.0 || rho_w > 1.0, "rho_w ", rho_w, " out of [0,1]");
    panic_if(rho_x < 0.0 || rho_x > 1.0, "rho_x ", rho_x, " out of [0,1]");
}

} // namespace

WorkloadCounts
sibiaWorkload(std::uint64_t k, double rho_w, double rho_x)
{
    checkRho(rho_w, rho_x);
    WorkloadCounts wl;
    double kd = static_cast<double>(k);
    double rho = std::max(rho_w, rho_x);
    wl.mults = 32.0 * kd * (2.0 - rho);
    wl.adds = 32.0 * kd * (2.0 - rho);
    wl.emaNibbles = 14.0 * kd;
    return wl;
}

WorkloadCounts
panaceaBitsliceWorkload(std::uint64_t k, double rho_w, double rho_x)
{
    checkRho(rho_w, rho_x);
    WorkloadCounts wl;
    double kd = static_cast<double>(k);
    wl.mults = 16.0 * kd * (2.0 - rho_x) * (2.0 - rho_w);
    wl.adds = wl.mults;
    wl.emaNibbles = 4.0 * kd * (4.0 - rho_w - rho_x);
    return wl;
}

WorkloadCounts
compensationWorkload(std::uint64_t k, double rho_x, bool eq6)
{
    panic_if(rho_x < 0.0 || rho_x > 1.0, "rho_x ", rho_x, " out of [0,1]");
    WorkloadCounts wl;
    double kd = static_cast<double>(k);
    wl.mults = 16.0;
    if (eq6) {
        wl.adds = 8.0 * kd * (1.0 - rho_x);
        wl.emaNibbles = 0.0;
    } else {
        wl.adds = 8.0 * kd * rho_x;
        wl.emaNibbles = 8.0 * kd * rho_x;
    }
    return wl;
}

WorkloadCounts
panaceaTotalWorkload(std::uint64_t k, double rho_w, double rho_x, bool eq6)
{
    WorkloadCounts bs = panaceaBitsliceWorkload(k, rho_w, rho_x);
    WorkloadCounts cs = compensationWorkload(k, rho_x, eq6);
    WorkloadCounts total;
    total.mults = bs.mults + cs.mults;
    total.adds = bs.adds + cs.adds;
    total.emaNibbles = bs.emaNibbles + cs.emaNibbles;
    return total;
}

} // namespace panacea
