#include "core/aqs_layer.h"

#include <cmath>

#include "quant/quantizer.h"
#include "quant/zpm.h"
#include "slicing/sbr.h"
#include "slicing/straightforward.h"
#include "util/histogram.h"
#include "util/logging.h"

namespace panacea {

AqsLinearLayer
AqsLinearLayer::calibrate(const MatrixF &w, std::span<const float> bias,
                          std::span<const MatrixF> calib_acts,
                          const AqsPipelineOptions &opts)
{
    fatal_if(calib_acts.empty(), "calibration requires at least one batch");

    AqsLinearLayer layer;
    layer.opts_ = opts;
    layer.n_ = sbrLoSliceCount(opts.weightBits);
    layer.k_ = activationLoSliceCount(opts.actBits);

    // --- Weight quantization (symmetric, Eq. (1)) ---
    layer.wParams_ = chooseSymmetricParams(w.data(), opts.weightBits);
    MatrixI32 w_codes = quantize(w, layer.wParams_);
    layer.weightOp_ = prepareWeights(w_codes, layer.n_, opts.gemm);

    // --- Activation range calibration (asymmetric, Eq. (2)) ---
    Calibrator calib(QuantScheme::Asymmetric, opts.actBits,
                     opts.calibPolicy, opts.calibTailPct);
    for (const MatrixF &batch : calib_acts)
        calib.observe(batch);
    layer.xParams_ = calib.finalize();

    // --- ZPM / DBS (paper §III-C) ---
    const int base_lo_bits = 4 * layer.k_;
    if (opts.enableDbs && opts.actBits == 8) {
        // Record the quantized histogram with the raw parameters, then
        // classify and apply the type-based ZPM.
        Histogram hist(0, layer.xParams_.codeMax());
        for (const MatrixF &batch : calib_acts) {
            MatrixI32 codes = quantize(batch, layer.xParams_);
            for (auto c : codes.data())
                hist.add(c);
        }
        DbsConfig dbs_cfg;
        dbs_cfg.targetMass = opts.dbsTargetMass;
        dbs_cfg.bits = opts.actBits;
        dbs_cfg.enableZpm = opts.enableZpm;
        dbs_cfg.histAwareZpm = opts.histAwareZpm;
        layer.dbs_ = classifyDistribution(hist, layer.xParams_.zeroPoint,
                                          dbs_cfg);
        layer.xParams_ = refitScaleForZeroPoint(
            layer.xParams_, layer.dbs_.zpm.zeroPoint);
    } else if (opts.enableZpm) {
        layer.dbs_.type = DbsType::Type1;
        layer.dbs_.loBits = base_lo_bits;
        if (opts.histAwareZpm) {
            Histogram hist(0, layer.xParams_.codeMax());
            for (const MatrixF &batch : calib_acts) {
                MatrixI32 codes = quantize(batch, layer.xParams_);
                for (auto c : codes.data())
                    hist.add(c);
            }
            layer.dbs_.zpm = manipulateZeroPointHistAware(
                hist, layer.xParams_.zeroPoint, opts.actBits,
                base_lo_bits);
        } else {
            layer.dbs_.zpm = manipulateZeroPoint(
                layer.xParams_.zeroPoint, opts.actBits, base_lo_bits);
        }
        layer.xParams_ = refitScaleForZeroPoint(
            layer.xParams_, layer.dbs_.zpm.zeroPoint);
    } else {
        layer.dbs_.type = DbsType::Type1;
        layer.dbs_.loBits = base_lo_bits;
        layer.dbs_.zpm.zeroPoint = layer.xParams_.zeroPoint;
        layer.dbs_.zpm.frequentSlice =
            frequentSliceOf(layer.xParams_.zeroPoint, base_lo_bits);
    }

    // --- Bias folding (Eq. (3)) on the accumulator grid sW * s'x ---
    std::vector<std::int64_t> bias_int;
    if (!bias.empty()) {
        fatal_if(bias.size() != w.rows(), "bias length ", bias.size(),
                 " != M ", w.rows());
        bias_int.resize(bias.size());
        double s = layer.wParams_.scale * layer.xParams_.scale;
        for (std::size_t i = 0; i < bias.size(); ++i)
            bias_int[i] = static_cast<std::int64_t>(
                std::llround(bias[i] / s));
    }
    layer.foldedBias_ = foldZeroPointBias(w_codes,
                                          layer.xParams_.zeroPoint,
                                          bias_int);
    return layer;
}

AqsLinearLayer
AqsLinearLayer::restore(const AqsPipelineOptions &opts,
                        const QuantParams &weight_params,
                        const QuantParams &act_params,
                        const DbsDecision &dbs, WeightOperand weight_op,
                        ArenaVec<std::int64_t> folded_bias)
{
    fatal_if(weight_op.sliced.planes.empty(),
             "restore needs a prepared weight operand");
    fatal_if(folded_bias.size() != weight_op.sliced.rows(),
             "restored folded bias length ", folded_bias.size(),
             " != M ", weight_op.sliced.rows());
    AqsLinearLayer layer;
    layer.opts_ = opts;
    layer.n_ = sbrLoSliceCount(opts.weightBits);
    layer.k_ = activationLoSliceCount(opts.actBits);
    layer.wParams_ = weight_params;
    layer.xParams_ = act_params;
    layer.dbs_ = dbs;
    layer.weightOp_ = std::move(weight_op);
    layer.foldedBias_ = std::move(folded_bias);
    return layer;
}

MatrixI32
AqsLinearLayer::quantizeInput(const MatrixF &x) const
{
    if (opts_.actBits == 8 && dbs_.loBits > 4) {
        // Wide-distribution DBS: the (l-4) LO LSBs are not
        // representable; round onto the coarse grid instead of
        // truncating, halving the slicing loss.
        return quantizeCoarse(x, xParams_, dbs_.loBits - 4);
    }
    return quantize(x, xParams_);
}

ActivationOperand
AqsLinearLayer::prepareInput(const MatrixI32 &x_codes) const
{
    if (opts_.actBits == 8 && dbs_.loBits != 4) {
        return prepareActivationsDbs(x_codes, dbs_.loBits,
                                     static_cast<Slice>(
                                         dbs_.zpm.frequentSlice),
                                     opts_.gemm);
    }
    return prepareActivations(x_codes, k_, xParams_.zeroPoint, opts_.gemm);
}

MatrixI64
AqsLinearLayer::forwardPrepared(const ActivationOperand &x_op,
                                AqsStats *stats) const
{
    MatrixI64 acc = aqsGemm(weightOp_, x_op, opts_.gemm, stats);
    addRowBias(acc, foldedBias_);
    return acc;
}

AqsStats
AqsLinearLayer::countStats(const ActivationOperand &x_op,
                           std::size_t ng_begin, std::size_t ng_end) const
{
    return aqsCountStats(weightOp_, x_op, opts_.gemm, ng_begin, ng_end);
}

MatrixF
AqsLinearLayer::dequantizeOutput(const MatrixI64 &acc) const
{
    return dequantizeAccumulator(acc, wParams_.scale, xParams_.scale);
}

MatrixF
AqsLinearLayer::forwardPreparedStep(const ActivationOperand &x_op,
                                    AqsStats *stats) const
{
    return dequantizeOutput(forwardPrepared(x_op, stats));
}

MatrixI64
AqsLinearLayer::forwardCodes(const MatrixI32 &x_codes,
                             AqsStats *stats) const
{
    return forwardPrepared(prepareInput(x_codes), stats);
}

MatrixF
AqsLinearLayer::forward(const MatrixF &x, AqsStats *stats) const
{
    MatrixI32 codes = quantizeInput(x);
    return dequantizeOutput(forwardCodes(codes, stats));
}

} // namespace panacea
