/**
 * @file
 * Sparsity-aware Zero-Point Manipulation (ZPM, paper §III-C Eq. (7)).
 *
 * The AQS-GEMM skips activation HO-slice vectors whose slices all equal
 * r = HO(zp). A raw zero point generally sits off-centre inside its
 * HO-slice bucket, so only part of the distribution's mass lands on the
 * r bucket. ZPM snaps the zero point to the centre of a bucket:
 *
 *     zp' = 2^l * round(zp / 2^l) + 2^(l-1)   (zp > 0)
 *
 * after which values within ±2^(l-1) of zp' share the same HO slice
 * r' = (zp' - 2^(l-1)) >> l, maximising skippable slices.
 */

#ifndef PANACEA_QUANT_ZPM_H
#define PANACEA_QUANT_ZPM_H

#include <cstdint>

#include "quant/quant_params.h"
#include "util/histogram.h"

namespace panacea {

/** Result of a zero-point manipulation. */
struct ZpmResult
{
    std::int32_t zeroPoint = 0;   ///< manipulated zero point zp'
    std::int32_t frequentSlice = 0; ///< HO slice value r' = HO(zp'-2^(l-1))
};

/**
 * Apply Eq. (7) to a zero point.
 *
 * @param zp    the calibrated zero point (code domain, >= 0)
 * @param bits  activation code bit-width b
 * @param lo_bits LO-slice bit-width l (4 for the base scheme; 5/6 for DBS)
 * @return the manipulated zero point and the frequent HO slice value.
 *
 * The bucket index is clamped so zp' always stays inside [0, 2^b - 1].
 */
ZpmResult manipulateZeroPoint(std::int32_t zp, int bits, int lo_bits);

/** Apply ZPM in place to asymmetric QuantParams. */
ZpmResult applyZpm(QuantParams &params, int lo_bits);

/**
 * The frequent HO slice for an *unmanipulated* zero point: r = HO(zp).
 * Matches the paper's pre-ZPM behaviour (Fig. 8(a)).
 */
std::int32_t frequentSliceOf(std::int32_t zp, int lo_bits);

/**
 * Extension beyond the paper: histogram-aware ZPM.
 *
 * Eq. (7) centres the zero point in its HO bucket, which is optimal for
 * symmetric distributions but loses mass on skewed ones (e.g. post-GELU
 * inputs whose tail is one-sided). Since the calibration histogram is
 * already recorded for DBS, the zero point's bucket phase can instead be
 * chosen to maximize the calibration mass that lands in the skip range:
 *
 *   zp' = argmax_{|zp'-zp| <= 2^(l-1)} mass{ c : HO(c + zp' - zp) =
 *                                            HO(zp') }.
 *
 * Ties prefer the smallest shift. Exactness is unaffected (any r is
 * compensated); this only changes how much gets skipped.
 *
 * @param codes calibration histogram of codes quantized with `zp`
 */
ZpmResult manipulateZeroPointHistAware(const Histogram &codes,
                                       std::int32_t zp, int bits,
                                       int lo_bits);

/**
 * Refit the scale after a zero-point manipulation so the calibrated
 * real range still fits the code range. Moving zp by up to 2^(l-1)
 * codes would otherwise clip one end of the distribution (noticeable
 * for the wide-bucket DBS types).
 *
 * @param raw    parameters straight out of calibration
 * @param new_zp the manipulated zero point
 * @return parameters with new_zp and the smallest scale covering the
 *         original real range [(0 - zp)*s, (2^b - 1 - zp)*s].
 */
QuantParams refitScaleForZeroPoint(const QuantParams &raw,
                                   std::int32_t new_zp);

} // namespace panacea

#endif // PANACEA_QUANT_ZPM_H
