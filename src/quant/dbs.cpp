#include "quant/dbs.h"

#include <cmath>

#include "util/logging.h"

namespace panacea {

const char *
toString(DbsType type)
{
    switch (type) {
      case DbsType::Type1: return "type-1";
      case DbsType::Type2: return "type-2";
      case DbsType::Type3: return "type-3";
    }
    return "?";
}

int
loBitsFor(DbsType type)
{
    switch (type) {
      case DbsType::Type1: return 4;
      case DbsType::Type2: return 5;
      case DbsType::Type3: return 6;
    }
    panic("unreachable DBS type");
}

namespace {

/**
 * Acklam's inverse normal CDF approximation; relative error < 1.15e-9
 * over the open interval (0, 1).
 */
double
probit(double p)
{
    panic_if(p <= 0.0 || p >= 1.0, "probit argument ", p, " out of (0,1)");

    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    constexpr double p_low = 0.02425;
    constexpr double p_high = 1.0 - p_low;

    if (p < p_low) {
        double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        double q = p - 0.5;
        double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) * q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

} // namespace

double
zScoreForMass(double mass)
{
    fatal_if(mass <= 0.0 || mass >= 1.0,
             "DBS target mass ", mass, " out of (0,1)");
    return probit(0.5 + mass / 2.0);
}

DbsDecision
classifyDistribution(const Histogram &quantized, std::int32_t zp,
                     const DbsConfig &cfg)
{
    DbsDecision decision;
    double z = zScoreForMass(cfg.targetMass);
    decision.stdTimesZ = quantized.stddev() * z;

    // Half-widths of the skip range for l = 4/5/6 are 8/16/32 codes: the
    // skip range spans one HO bucket of 2^l codes centred (post-ZPM) on
    // the zero point.
    if (decision.stdTimesZ <= 8.0)
        decision.type = DbsType::Type1;
    else if (decision.stdTimesZ <= 16.0)
        decision.type = DbsType::Type2;
    else
        decision.type = DbsType::Type3;

    decision.loBits = loBitsFor(decision.type);

    if (cfg.enableZpm) {
        decision.zpm =
            cfg.histAwareZpm
                ? manipulateZeroPointHistAware(quantized, zp, cfg.bits,
                                               decision.loBits)
                : manipulateZeroPoint(zp, cfg.bits, decision.loBits);
    } else {
        decision.zpm.zeroPoint = zp;
        decision.zpm.frequentSlice = frequentSliceOf(zp, decision.loBits);
    }
    return decision;
}

std::int32_t
dbsEffectiveCode(std::int32_t code, int lo_bits)
{
    panic_if(lo_bits < 4 || lo_bits > 6, "DBS lo_bits ", lo_bits,
             " outside {4,5,6}");
    std::int32_t mask = ~((1 << (lo_bits - 4)) - 1);
    return code & mask;
}

} // namespace panacea
