/**
 * @file
 * Quantization parameter types shared by the calibrator, the quantizers
 * and the bit-slicing layer (paper Eq. (1) and (2)).
 */

#ifndef PANACEA_QUANT_QUANT_PARAMS_H
#define PANACEA_QUANT_QUANT_PARAMS_H

#include <cstdint>

namespace panacea {

/** Uniform quantization scheme. */
enum class QuantScheme
{
    Symmetric,   ///< signed codes centred on zero (paper Eq. (1))
    Asymmetric,  ///< unsigned codes with a zero point (paper Eq. (2))
};

/** @return a short printable name for a scheme. */
const char *toString(QuantScheme scheme);

/**
 * Parameters of one uniform quantizer.
 *
 * For Symmetric: codes are signed in [-2^(b-1), 2^(b-1)-1] and
 * zeroPoint is always 0. For Asymmetric: codes are unsigned in
 * [0, 2^b - 1] and zeroPoint maps real zero.
 */
struct QuantParams
{
    QuantScheme scheme = QuantScheme::Symmetric;
    int bits = 8;             ///< code bit-width b
    double scale = 1.0;       ///< real-valued step size (s or s')
    std::int32_t zeroPoint = 0;

    /** @return smallest representable code. */
    std::int32_t
    codeMin() const
    {
        return scheme == QuantScheme::Symmetric
            ? -(std::int32_t{1} << (bits - 1)) : 0;
    }

    /** @return largest representable code. */
    std::int32_t
    codeMax() const
    {
        return scheme == QuantScheme::Symmetric
            ? (std::int32_t{1} << (bits - 1)) - 1
            : (std::int32_t{1} << bits) - 1;
    }

    /** @return number of representable codes (2^bits). */
    std::int64_t levels() const { return std::int64_t{1} << bits; }
};

} // namespace panacea

#endif // PANACEA_QUANT_QUANT_PARAMS_H
