#include "quant/gemm_quant.h"

#include <cmath>

#include "quant/quantizer.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

MatrixF
floatGemm(const MatrixF &w, const MatrixF &x, std::span<const float> bias)
{
    panic_if(w.cols() != x.rows(), "GEMM shape mismatch: ", w.rows(), "x",
             w.cols(), " * ", x.rows(), "x", x.cols());
    panic_if(!bias.empty() && bias.size() != w.rows(),
             "bias length ", bias.size(), " != M ", w.rows());

    MatrixF out(w.rows(), x.cols());
    for (std::size_t m = 0; m < w.rows(); ++m) {
        for (std::size_t n = 0; n < x.cols(); ++n) {
            double acc = bias.empty() ? 0.0 : bias[m];
            for (std::size_t k = 0; k < w.cols(); ++k)
                acc += static_cast<double>(w(m, k)) *
                       static_cast<double>(x(k, n));
            out(m, n) = static_cast<float>(acc);
        }
    }
    return out;
}

MatrixI64
intGemm(const MatrixI32 &w, const MatrixI32 &x)
{
    panic_if(w.cols() != x.rows(), "int GEMM shape mismatch: ", w.rows(),
             "x", w.cols(), " * ", x.rows(), "x", x.cols());

    MatrixI64 out(w.rows(), x.cols());
    // Rows are independent: parallel over m, bit-exact for any thread
    // count.
    parallelFor(0, w.rows(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t m = b; m < e; ++m) {
            for (std::size_t k = 0; k < w.cols(); ++k) {
                std::int64_t wmk = w(m, k);
                if (wmk == 0)
                    continue;
                for (std::size_t n = 0; n < x.cols(); ++n)
                    out(m, n) += wmk * x(k, n);
            }
        }
    });
    return out;
}

std::vector<std::int64_t>
foldZeroPointBias(const MatrixI32 &w, std::int32_t zp_x,
                  std::span<const std::int64_t> bias_int)
{
    panic_if(!bias_int.empty() && bias_int.size() != w.rows(),
             "bias length ", bias_int.size(), " != M ", w.rows());

    std::vector<std::int64_t> folded(w.rows(), 0);
    for (std::size_t m = 0; m < w.rows(); ++m) {
        std::int64_t row_sum = 0;
        for (std::size_t k = 0; k < w.cols(); ++k)
            row_sum += w(m, k);
        std::int64_t base = bias_int.empty() ? 0 : bias_int[m];
        folded[m] = base - static_cast<std::int64_t>(zp_x) * row_sum;
    }
    return folded;
}

void
addRowBias(MatrixI64 &acc, std::span<const std::int64_t> bias)
{
    panic_if(bias.size() != acc.rows(), "row bias length ", bias.size(),
             " != rows ", acc.rows());
    for (std::size_t m = 0; m < acc.rows(); ++m)
        for (std::size_t n = 0; n < acc.cols(); ++n)
            acc(m, n) += bias[m];
}

MatrixF
dequantizeAccumulator(const MatrixI64 &acc, double scale_w, double scale_x)
{
    MatrixF out(acc.rows(), acc.cols());
    double s = scale_w * scale_x;
    parallelFor(0, acc.rows(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t m = b; m < e; ++m)
            for (std::size_t n = 0; n < acc.cols(); ++n)
                out(m, n) = static_cast<float>(s * static_cast<double>(
                    acc(m, n)));
    });
    return out;
}

QuantizedLinear
QuantizedLinear::make(const MatrixF &w, std::span<const float> bias,
                      int w_bits, const QuantParams &x_params)
{
    QuantizedLinear layer;
    layer.wParams = chooseSymmetricParams(w.data(), w_bits);
    layer.wInt = quantize(w, layer.wParams);
    layer.xParams = x_params;

    // Quantize the float bias on the accumulator grid sW*sx, then fold in
    // the zero-point correction (Eq. (3)).
    std::vector<std::int64_t> bias_int;
    if (!bias.empty()) {
        bias_int.resize(bias.size());
        double s = layer.wParams.scale * x_params.scale;
        for (std::size_t i = 0; i < bias.size(); ++i)
            bias_int[i] = static_cast<std::int64_t>(
                std::llround(bias[i] / s));
    }
    layer.foldedBias = foldZeroPointBias(layer.wInt, x_params.zeroPoint,
                                         bias_int);
    return layer;
}

MatrixF
QuantizedLinear::forward(const MatrixF &x) const
{
    MatrixI32 codes = quantize(x, xParams);
    MatrixI64 acc = forwardCodes(codes);
    return dequantizeAccumulator(acc, wParams.scale, xParams.scale);
}

MatrixI64
QuantizedLinear::forwardCodes(const MatrixI32 &x_codes) const
{
    MatrixI64 acc = intGemm(wInt, x_codes);
    addRowBias(acc, foldedBias);
    return acc;
}

} // namespace panacea
