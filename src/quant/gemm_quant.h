/**
 * @file
 * Integer GEMM with asymmetric activation quantization (paper Eq. (3)):
 *
 *   W x + b ~= sW sx (Wint xuint - zpx Wint 1 + bint)
 *            = sW sx (Wint xuint + b_hat)
 *
 * The zero-point term is folded into the bias offline, so inference only
 * runs the plain integer GEMM plus a per-row constant.
 */

#ifndef PANACEA_QUANT_GEMM_QUANT_H
#define PANACEA_QUANT_GEMM_QUANT_H

#include <cstdint>
#include <span>
#include <vector>

#include "quant/quant_params.h"
#include "util/matrix.h"

namespace panacea {

/** Plain reference float GEMM: out = W x (+ bias per output row). */
MatrixF floatGemm(const MatrixF &w, const MatrixF &x,
                  std::span<const float> bias = {});

/** Naive integer GEMM with 64-bit accumulation: out = W x. */
MatrixI64 intGemm(const MatrixI32 &w, const MatrixI32 &x);

/**
 * Fold the zero-point correction into the bias (Eq. (3)):
 * b_hat[m] = bias_int[m] - zp_x * sum_k W[m][k].
 * An empty bias is treated as all zeros.
 */
std::vector<std::int64_t> foldZeroPointBias(const MatrixI32 &w,
                                            std::int32_t zp_x,
                                            std::span<const std::int64_t>
                                                bias_int = {});

/** Add a per-row constant to an accumulator matrix in place. */
void addRowBias(MatrixI64 &acc, std::span<const std::int64_t> bias);

/** Dequantize an accumulator: out = sW * sx * acc. */
MatrixF dequantizeAccumulator(const MatrixI64 &acc, double scale_w,
                              double scale_x);

/**
 * End-to-end quantized linear layer for accuracy studies: symmetric
 * weights, caller-chosen activation scheme, Eq. (3) evaluation, float
 * output. Exactness of this path against the bit-slice engines is the
 * core invariant of the repository.
 */
struct QuantizedLinear
{
    MatrixI32 wInt;             ///< symmetric weight codes
    QuantParams wParams;
    QuantParams xParams;        ///< activation parameters (either scheme)
    std::vector<std::int64_t> foldedBias;

    /** Build from float weights + bias and pre-chosen activation params. */
    static QuantizedLinear make(const MatrixF &w, std::span<const float>
                                bias, int w_bits, const QuantParams &x_params);

    /** Run on a float activation: quantize x, integer GEMM, dequantize. */
    MatrixF forward(const MatrixF &x) const;

    /** Run on pre-quantized activation codes; returns the accumulator. */
    MatrixI64 forwardCodes(const MatrixI32 &x_codes) const;
};

} // namespace panacea

#endif // PANACEA_QUANT_GEMM_QUANT_H
