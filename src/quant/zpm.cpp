#include "quant/zpm.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace panacea {

ZpmResult
manipulateZeroPoint(std::int32_t zp, int bits, int lo_bits)
{
    panic_if(lo_bits < 1 || lo_bits >= bits,
             "ZPM lo_bits=", lo_bits, " invalid for ", bits, "-bit codes");
    panic_if(zp < 0, "asymmetric zero point must be non-negative, got ", zp);

    ZpmResult res;
    if (zp == 0) {
        // Eq. (7): a zero zp stays zero -- the distribution already hugs
        // the bottom bucket, whose HO slice is 0.
        res.zeroPoint = 0;
        res.frequentSlice = 0;
        return res;
    }

    const std::int32_t step = 1 << lo_bits;
    const std::int32_t half = step / 2;
    const std::int32_t max_bucket = (1 << (bits - lo_bits)) - 1;

    // The bucket *containing* zp: its centre is within step/2 of zp,
    // and the frequent slice stays r' = HO(zp) as the paper defines it.
    std::int32_t bucket = std::clamp(zp >> lo_bits, 0, max_bucket);

    res.zeroPoint = bucket * step + half;
    res.frequentSlice = (res.zeroPoint - half) >> lo_bits;
    panic_if(res.frequentSlice != bucket, "ZPM slice/bucket mismatch");
    return res;
}

ZpmResult
applyZpm(QuantParams &params, int lo_bits)
{
    panic_if(params.scheme != QuantScheme::Asymmetric,
             "ZPM only applies to asymmetric quantization");
    ZpmResult res = manipulateZeroPoint(params.zeroPoint, params.bits,
                                        lo_bits);
    params.zeroPoint = res.zeroPoint;
    return res;
}

std::int32_t
frequentSliceOf(std::int32_t zp, int lo_bits)
{
    panic_if(zp < 0, "zero point must be non-negative");
    return zp >> lo_bits;
}

ZpmResult
manipulateZeroPointHistAware(const Histogram &codes, std::int32_t zp,
                             int bits, int lo_bits)
{
    panic_if(lo_bits < 1 || lo_bits >= bits,
             "ZPM lo_bits=", lo_bits, " invalid for ", bits, "-bit codes");
    panic_if(zp < 0, "asymmetric zero point must be non-negative");

    const std::int32_t code_max = (1 << bits) - 1;
    const std::int32_t half = 1 << (lo_bits - 1);

    ZpmResult best = manipulateZeroPoint(zp, bits, lo_bits);
    std::uint64_t best_mass = 0;
    std::int32_t best_abs_shift = 1 << bits;  // larger than any shift

    for (std::int32_t shift = -half; shift <= half; ++shift) {
        const std::int32_t zp_new = zp + shift;
        if (zp_new < 0 || zp_new > code_max)
            continue;
        const std::int32_t r = zp_new >> lo_bits;
        // Re-quantizing with zp_new moves every code by `shift`; count
        // the calibration mass whose shifted code shares r's HO bucket.
        const std::int32_t bucket_lo = (r << lo_bits) - shift;
        const std::int32_t bucket_hi = bucket_lo + (1 << lo_bits) - 1;
        const std::uint64_t mass = static_cast<std::uint64_t>(
            static_cast<double>(codes.total()) *
            codes.massIn(bucket_lo, bucket_hi) + 0.5);
        if (mass > best_mass ||
            (mass == best_mass && std::abs(shift) < best_abs_shift)) {
            best_mass = mass;
            best_abs_shift = std::abs(shift);
            best.zeroPoint = zp_new;
            best.frequentSlice = r;
        }
    }
    return best;
}

QuantParams
refitScaleForZeroPoint(const QuantParams &raw, std::int32_t new_zp)
{
    panic_if(raw.scheme != QuantScheme::Asymmetric,
             "scale refit applies to asymmetric parameters");
    const std::int32_t code_max = raw.codeMax();
    panic_if(new_zp < 0 || new_zp > code_max, "zero point ", new_zp,
             " out of code range");

    // The calibrated real range implied by the raw parameters.
    const double lo = -static_cast<double>(raw.zeroPoint) * raw.scale;
    const double hi =
        static_cast<double>(code_max - raw.zeroPoint) * raw.scale;

    double scale = raw.scale;
    if (new_zp > 0)
        scale = std::max(scale, -lo / static_cast<double>(new_zp));
    if (new_zp < code_max)
        scale = std::max(
            scale, hi / static_cast<double>(code_max - new_zp));

    QuantParams out = raw;
    out.zeroPoint = new_zp;
    out.scale = scale;
    return out;
}

} // namespace panacea
