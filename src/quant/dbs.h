/**
 * @file
 * Distribution-Based bit-Slicing (DBS, paper §III-C Fig. 9/10).
 *
 * During PTQ calibration the quantized-activation histogram of each layer
 * is reduced to its standard deviation; comparing std * z (where z is the
 * z-score of the target skip-range mass) against the half-width of the
 * slice skip range classifies the layer:
 *
 *   type-1: std*z <=  8  -> l = 4 (base slicing, skip range 16 codes)
 *   type-2: std*z <= 16  -> l = 5 (skip range doubled to 32 codes)
 *   type-3: otherwise    -> l = 6 (skip range 64 codes)
 *
 * At inference, hardware keeps 4-bit slices by zero-padding the short HO
 * slice and discarding the (l-4) LSBs of the long LO slice; the S-ACC
 * shifts outputs by the per-type amounts. Calibration finishes with a
 * type-based ZPM computing zp'' and r'' for the chosen l.
 */

#ifndef PANACEA_QUANT_DBS_H
#define PANACEA_QUANT_DBS_H

#include <cstdint>

#include "quant/quant_params.h"
#include "quant/zpm.h"
#include "util/histogram.h"

namespace panacea {

/** The three DBS distribution classes. */
enum class DbsType : int { Type1 = 1, Type2 = 2, Type3 = 3 };

/** @return printable name ("type-1" ...). */
const char *toString(DbsType type);

/** @return the LO-slice width l for a type (4, 5 or 6). */
int loBitsFor(DbsType type);

/** DBS calibration settings. */
struct DbsConfig
{
    /**
     * Target fraction of the distribution the skip range should capture;
     * its two-sided z-score is compared against the range half-width.
     */
    double targetMass = 0.90;
    int bits = 8;              ///< activation code bit-width
    bool enableZpm = true;     ///< run the type-based ZPM afterwards
    /**
     * Extension: choose the zero point's bucket phase from the recorded
     * histogram instead of blind Eq. (7) centring (helps skewed
     * distributions; see zpm.h).
     */
    bool histAwareZpm = false;
};

/** Outcome of DBS calibration for one layer. */
struct DbsDecision
{
    DbsType type = DbsType::Type1;
    int loBits = 4;            ///< l
    ZpmResult zpm;             ///< zp'' and frequent slice r''
    double stdTimesZ = 0.0;    ///< the classification statistic
};

/**
 * Two-sided z-score: the z with P(|Z| <= z) = mass for a standard normal.
 * Implemented with Acklam's rational approximation of the probit function
 * (the "z-score table" of the paper, in closed form).
 */
double zScoreForMass(double mass);

/**
 * Classify a layer's quantized-activation histogram and derive the
 * slicing rule plus the type-based ZPM.
 *
 * @param quantized histogram of the layer's quantized activation codes
 * @param zp        the layer's calibrated zero point
 * @param cfg       DBS settings
 */
DbsDecision classifyDistribution(const Histogram &quantized,
                                 std::int32_t zp, const DbsConfig &cfg);

/**
 * The LSB mask DBS inference applies to activation codes: with LO width
 * l, the (l-4) discarded LSBs make the effective code
 * x & ~((1 << (l-4)) - 1).
 */
std::int32_t dbsEffectiveCode(std::int32_t code, int lo_bits);

} // namespace panacea

#endif // PANACEA_QUANT_DBS_H
