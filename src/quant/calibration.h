/**
 * @file
 * PTQ calibration (paper §II-A): feed a small calibration set through a
 * layer, record the activation range, and derive the layer's scale and
 * zero point. Supports min/max and percentile clipping.
 */

#ifndef PANACEA_QUANT_CALIBRATION_H
#define PANACEA_QUANT_CALIBRATION_H

#include <limits>
#include <span>
#include <vector>

#include "quant/quant_params.h"
#include "util/matrix.h"

namespace panacea {

/** Range-selection policy for calibration. */
enum class CalibrationPolicy
{
    MinMax,        ///< use the observed min/max exactly
    Percentile,    ///< clip to [q, 100-q] percentiles to reject outliers
};

/**
 * Accumulates activation observations across calibration batches and
 * produces QuantParams on finalize().
 */
class Calibrator
{
  public:
    /**
     * @param scheme   symmetric (weights) or asymmetric (activations)
     * @param bits     code bit-width
     * @param policy   range-selection policy
     * @param tail_pct percentile tail mass (only for Percentile policy),
     *                 e.g. 0.1 clips to the [0.1, 99.9] percentiles
     */
    Calibrator(QuantScheme scheme, int bits,
               CalibrationPolicy policy = CalibrationPolicy::MinMax,
               double tail_pct = 0.1);

    /** Record one calibration batch. */
    void observe(std::span<const float> values);

    /** Record a whole matrix. */
    void observe(const MatrixF &tensor) { observe(tensor.data()); }

    /** @return quantization parameters for everything observed so far. */
    QuantParams finalize() const;

    /** @return number of values observed. */
    std::size_t observedCount() const { return count_; }

  private:
    QuantScheme scheme_;
    int bits_;
    CalibrationPolicy policy_;
    double tailPct_;

    float min_ = std::numeric_limits<float>::infinity();
    float max_ = -std::numeric_limits<float>::infinity();
    std::size_t count_ = 0;

    /** Reservoir of samples for percentile estimation. */
    std::vector<float> reservoir_;
    static constexpr std::size_t reservoirCap = 1 << 18;
    std::size_t seen_ = 0;
};

} // namespace panacea

#endif // PANACEA_QUANT_CALIBRATION_H
