#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/parallel_for.h"
#include "util/stats.h"

namespace panacea {

namespace {

/** Round-half-away-from-zero, the ⌊·⌉ of the paper. */
std::int64_t
roundNearest(double v)
{
    return static_cast<std::int64_t>(std::llround(v));
}

} // namespace

QuantParams
chooseSymmetricParams(std::span<const float> sample, int bits)
{
    panic_if(bits < 2 || bits > 16, "unsupported bit-width ", bits);
    SampleStats st = computeStats(sample);
    double abs_max = std::max(std::abs(st.min), std::abs(st.max));
    return chooseSymmetricParamsFromAbsMax(static_cast<float>(abs_max), bits);
}

QuantParams
chooseSymmetricParamsFromAbsMax(float abs_max, int bits)
{
    QuantParams p;
    p.scheme = QuantScheme::Symmetric;
    p.bits = bits;
    double levels = static_cast<double>((std::int64_t{1} << bits) - 1);
    p.scale = abs_max > 0.0f ? 2.0 * abs_max / levels : 1.0;
    p.zeroPoint = 0;
    return p;
}

QuantParams
chooseAsymmetricParams(std::span<const float> sample, int bits)
{
    panic_if(bits < 2 || bits > 16, "unsupported bit-width ", bits);
    SampleStats st = computeStats(sample);
    return chooseAsymmetricParamsFromRange(static_cast<float>(st.min),
                                           static_cast<float>(st.max), bits);
}

QuantParams
chooseAsymmetricParamsFromRange(float lo, float hi, int bits)
{
    panic_if(hi < lo, "asymmetric range [", lo, ",", hi, "] inverted");
    QuantParams p;
    p.scheme = QuantScheme::Asymmetric;
    p.bits = bits;
    double levels = static_cast<double>((std::int64_t{1} << bits) - 1);
    double range = static_cast<double>(hi) - static_cast<double>(lo);
    p.scale = range > 0.0 ? range / levels : 1.0;
    auto zp = roundNearest(-static_cast<double>(lo) / p.scale);
    p.zeroPoint = static_cast<std::int32_t>(
        std::clamp<std::int64_t>(zp, 0, (std::int64_t{1} << bits) - 1));
    return p;
}

std::int32_t
quantizeValue(float value, const QuantParams &params)
{
    double scaled = static_cast<double>(value) / params.scale;
    std::int64_t code = roundNearest(scaled) + params.zeroPoint;
    return static_cast<std::int32_t>(std::clamp<std::int64_t>(
        code, params.codeMin(), params.codeMax()));
}

float
dequantizeValue(std::int32_t code, const QuantParams &params)
{
    return static_cast<float>(
        params.scale * static_cast<double>(code - params.zeroPoint));
}

MatrixI32
quantize(const MatrixF &input, const QuantParams &params)
{
    MatrixI32 out(input.rows(), input.cols());
    auto src = input.data();
    auto dst = out.data();
    // Element-wise and pure: safe and bit-exact under the shared pool.
    parallelFor(0, src.size(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i)
            dst[i] = quantizeValue(src[i], params);
    });
    return out;
}

std::int32_t
quantizeValueCoarse(float value, const QuantParams &params, int drop_bits)
{
    panic_if(drop_bits < 0 || drop_bits > 4, "coarse drop_bits ",
             drop_bits, " out of [0,4]");
    // ZPM's bucket-centred zero points are always aligned to the grid;
    // an unaligned zero point merely shifts the rounding grid by a
    // sub-step offset (the GEMM arithmetic stays exact either way).
    if (drop_bits == 0)
        return quantizeValue(value, params);

    const std::int32_t step = 1 << drop_bits;
    double scaled = static_cast<double>(value) /
                    (params.scale * static_cast<double>(step));
    std::int64_t coarse =
        roundNearest(scaled) + params.zeroPoint / step;
    std::int64_t max_coarse = params.codeMax() / step;
    coarse = std::clamp<std::int64_t>(coarse, params.codeMin() / step,
                                      max_coarse);
    return static_cast<std::int32_t>(coarse * step);
}

MatrixI32
quantizeCoarse(const MatrixF &input, const QuantParams &params,
               int drop_bits)
{
    MatrixI32 out(input.rows(), input.cols());
    auto src = input.data();
    auto dst = out.data();
    parallelFor(0, src.size(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i)
            dst[i] = quantizeValueCoarse(src[i], params, drop_bits);
    });
    return out;
}

MatrixF
dequantize(const MatrixI32 &codes, const QuantParams &params)
{
    MatrixF out(codes.rows(), codes.cols());
    auto src = codes.data();
    auto dst = out.data();
    parallelFor(0, src.size(), [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i)
            dst[i] = dequantizeValue(src[i], params);
    });
    return out;
}

const char *
toString(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::Symmetric:  return "symmetric";
      case QuantScheme::Asymmetric: return "asymmetric";
    }
    return "?";
}

} // namespace panacea
