/**
 * @file
 * Uniform symmetric / asymmetric quantization (paper Eq. (1) and (2)).
 *
 * Scale-factor conventions follow the paper exactly:
 *   symmetric:  s  = 2 * max(|x|) / (2^b - 1)
 *   asymmetric: s' = (max(x) - min(x)) / (2^b - 1)
 *               zp = clip(round(-min(x) / s'), 0, 2^b - 1)
 */

#ifndef PANACEA_QUANT_QUANTIZER_H
#define PANACEA_QUANT_QUANTIZER_H

#include <span>

#include "quant/quant_params.h"
#include "util/matrix.h"

namespace panacea {

/** Derive symmetric parameters (Eq. (1) scale rule) from a sample. */
QuantParams chooseSymmetricParams(std::span<const float> sample, int bits);

/** Derive asymmetric parameters (Eq. (2) scale/zero-point) from a sample. */
QuantParams chooseAsymmetricParams(std::span<const float> sample, int bits);

/**
 * Derive asymmetric parameters from explicit clipping bounds
 * (used by percentile calibration).
 */
QuantParams chooseAsymmetricParamsFromRange(float lo, float hi, int bits);

/** Derive symmetric parameters from an explicit |x| bound. */
QuantParams chooseSymmetricParamsFromAbsMax(float abs_max, int bits);

/** Quantize one real value to its integer code. */
std::int32_t quantizeValue(float value, const QuantParams &params);

/** Reconstruct the real value of one code. */
float dequantizeValue(std::int32_t code, const QuantParams &params);

/** Quantize a whole matrix to integer codes. */
MatrixI32 quantize(const MatrixF &input, const QuantParams &params);

/**
 * Quantize one value onto the coarse grid of codes that are multiples
 * of 2^drop_bits (used by DBS wide-distribution slicing, where the
 * (l-4) LO LSBs are not representable). Rounding to the coarse grid
 * halves the error of naively truncating the discarded LSBs. ZPM's
 * bucket-centred zero points are always aligned to this grid.
 */
std::int32_t quantizeValueCoarse(float value, const QuantParams &params,
                                 int drop_bits);

/** Coarse-grid quantization of a whole matrix. */
MatrixI32 quantizeCoarse(const MatrixF &input, const QuantParams &params,
                         int drop_bits);

/** Dequantize a whole code matrix. */
MatrixF dequantize(const MatrixI32 &codes, const QuantParams &params);

} // namespace panacea

#endif // PANACEA_QUANT_QUANTIZER_H
