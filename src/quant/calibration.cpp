#include "quant/calibration.h"

#include <algorithm>
#include <cmath>

#include "quant/quantizer.h"
#include "util/logging.h"
#include "util/stats.h"

namespace panacea {

Calibrator::Calibrator(QuantScheme scheme, int bits,
                       CalibrationPolicy policy, double tail_pct)
    : scheme_(scheme), bits_(bits), policy_(policy), tailPct_(tail_pct)
{
    fatal_if(bits < 2 || bits > 16, "calibrator bit-width ", bits,
             " out of supported range [2,16]");
    fatal_if(tail_pct < 0.0 || tail_pct >= 50.0,
             "percentile tail ", tail_pct, " out of [0,50)");
    if (policy_ == CalibrationPolicy::Percentile)
        reservoir_.reserve(reservoirCap);
}

void
Calibrator::observe(std::span<const float> values)
{
    for (float v : values) {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += values.size();

    if (policy_ == CalibrationPolicy::Percentile) {
        // Uniform reservoir sampling keeps percentile estimates unbiased
        // without retaining the whole calibration stream.
        for (float v : values) {
            ++seen_;
            if (reservoir_.size() < reservoirCap) {
                reservoir_.push_back(v);
            } else {
                std::size_t j = static_cast<std::size_t>(
                    (seen_ * 2654435761u) % seen_);
                if (j < reservoirCap)
                    reservoir_[j] = v;
            }
        }
    }
}

QuantParams
Calibrator::finalize() const
{
    fatal_if(count_ == 0, "calibrator finalized without observations");

    float lo = min_;
    float hi = max_;
    if (policy_ == CalibrationPolicy::Percentile && !reservoir_.empty()) {
        lo = static_cast<float>(percentile(reservoir_, tailPct_));
        hi = static_cast<float>(percentile(reservoir_, 100.0 - tailPct_));
        if (hi < lo)
            std::swap(lo, hi);
    }

    if (scheme_ == QuantScheme::Symmetric) {
        float abs_max = std::max(std::abs(lo), std::abs(hi));
        return chooseSymmetricParamsFromAbsMax(abs_max, bits_);
    }
    return chooseAsymmetricParamsFromRange(lo, hi, bits_);
}

} // namespace panacea
