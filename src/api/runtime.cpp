#include "panacea/runtime.h"

#include "core/kernel_cost_model.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

Runtime::Runtime(const RuntimeOptions &opts) : opts_(opts)
{
    if (!opts_.isa.empty()) {
        IsaLevel level;
        if (parseIsaLevel(opts_.isa, &level))
            setIsaLevel(level); // clamped to hardware + build support
        else
            warn("RuntimeOptions::isa '", opts_.isa,
                 "' not recognized (scalar|sse2|avx2|avx512|vnni) - "
                 "keeping current selection");
    }
    if (!opts_.streamPolicy.empty()) {
        StreamPolicy policy;
        if (parseStreamPolicy(opts_.streamPolicy, &policy))
            setStreamPolicy(policy);
        else
            warn("RuntimeOptions::streamPolicy '", opts_.streamPolicy,
                 "' not recognized (static|measured|stream|gather) - "
                 "keeping current selection");
    }
    if (opts_.threads > 0)
        setParallelThreads(opts_.threads);

    if (opts_.useGlobalCache) {
        cache_ = &serve::PreparedModelCache::global();
    } else {
        owned_ = std::make_unique<serve::PreparedModelCache>();
        cache_ = owned_.get();
    }
    if (!opts_.cacheDir.empty())
        cache_->setDiskDir(opts_.cacheDir);
    if (opts_.cacheMaxBytes > 0)
        cache_->setDiskCapBytes(opts_.cacheMaxBytes);
    cache_->setMmapModels(opts_.mmapModels);
}

CompiledModel
Runtime::compile(const ModelSpec &spec, const CompileOptions &opts)
{
    return CompiledModel(cache_->acquire(spec, opts));
}

Session
Runtime::createSession(const SessionOptions &opts)
{
    return Session(opts, cache_);
}

Fleet
Runtime::createFleet(FleetOptions opts)
{
    // Precedence for the replica count: explicit FleetOptions, then
    // RuntimeOptions::replicas; 0 lets the router read
    // PANACEA_REPLICAS and fall back to 2.
    if (opts.replicas <= 0)
        opts.replicas = opts_.replicas;
    return Fleet(opts);
}

} // namespace panacea
