/**
 * @file
 * Synthetic tensor generation (substitution for HuggingFace model
 * tensors; DESIGN.md §2). Weights are near-zero Gaussians with
 * per-channel scale variation (optionally with outlier rows, as in
 * Llama); activations are drawn per distribution family with
 * channel-wise structure so that quantization, zero points and
 * bit-slice sparsity behave like the real layers.
 */

#ifndef PANACEA_MODELS_SYNTH_DATA_H
#define PANACEA_MODELS_SYNTH_DATA_H

#include "models/layer.h"
#include "util/matrix.h"
#include "util/random.h"

namespace panacea {

/**
 * Generate a weight matrix of shape m x k.
 *
 * @param outlier_rate fraction of rows with ~8x larger magnitude
 */
MatrixF genWeights(Rng &rng, std::size_t m, std::size_t k,
                   double outlier_rate = 0.0);

/**
 * Generate an activation matrix of shape k x n for one distribution
 * family. Rows are channels (shared statistics), columns are tokens.
 */
MatrixF genActivations(Rng &rng, std::size_t k, std::size_t n,
                       ActDistKind kind, double spread = 1.0,
                       double outlier_rate = 0.0);

/** Generate the activation described by a LayerSpec. */
MatrixF genLayerActivations(Rng &rng, const LayerSpec &layer,
                            std::size_t n);

} // namespace panacea

#endif // PANACEA_MODELS_SYNTH_DATA_H
