#include "models/accuracy_proxy.h"

#include <algorithm>
#include <cmath>

#include "quant/dbs.h"
#include "quant/quantizer.h"
#include "util/logging.h"

namespace panacea {

namespace {

double
nmseOfCodes(const MatrixF &x, const MatrixI32 &codes,
            const QuantParams &params)
{
    double power = 0.0;
    double noise = 0.0;
    auto xs = x.data();
    auto cs = codes.data();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double v = xs[i];
        double err = v - dequantizeValue(cs[i], params);
        power += v * v;
        noise += err * err;
    }
    if (power == 0.0)
        return 0.0;
    return noise / power;
}

} // namespace

double
quantizationNmse(const MatrixF &x, const QuantParams &params)
{
    MatrixI32 codes = quantize(x, params);
    return nmseOfCodes(x, codes, params);
}

double
quantizationNmseDbs(const MatrixF &x, const QuantParams &params,
                    int lo_bits)
{
    panic_if(params.bits != 8, "DBS NMSE is defined on 8-bit codes");
    // Matches the inference path: round onto the coarse grid, whose
    // codes already have their (l-4) LSBs clear.
    MatrixI32 codes = quantizeCoarse(x, params, lo_bits - 4);
    for (auto &c : codes.data())
        panic_if(c != dbsEffectiveCode(c, lo_bits),
                 "coarse code not on the DBS grid");
    return nmseOfCodes(x, codes, params);
}

double
quantizationNmsePerRow(const MatrixF &w, int bits)
{
    double power = 0.0;
    double noise = 0.0;
    for (std::size_t r = 0; r < w.rows(); ++r) {
        auto row = w.row(r);
        QuantParams p = chooseSymmetricParams(row, bits);
        for (float v : row) {
            double err = v - dequantizeValue(quantizeValue(v, p), p);
            power += static_cast<double>(v) * v;
            noise += err * err;
        }
    }
    if (power == 0.0)
        return 0.0;
    return noise / power;
}

double
proxyPerplexity(double fp_ppl, double mean_nmse, double alpha)
{
    panic_if(mean_nmse < 0.0, "negative NMSE");
    return fp_ppl * std::exp(alpha * mean_nmse);
}

double
proxyAccuracyLossPct(double mean_nmse, double beta)
{
    panic_if(mean_nmse < 0.0, "negative NMSE");
    return beta * std::sqrt(mean_nmse);
}

} // namespace panacea
