#include "models/model_zoo.h"

namespace panacea {

const char *
toString(ActDistKind kind)
{
    switch (kind) {
      case ActDistKind::LayerNormGauss: return "layernorm-gauss";
      case ActDistKind::PostGelu:       return "post-gelu";
      case ActDistKind::PostRelu:       return "post-relu";
      case ActDistKind::PostAttention:  return "post-attention";
      case ActDistKind::LongTail:       return "long-tail";
      case ActDistKind::ImageNorm:      return "image-norm";
    }
    return "?";
}

std::uint64_t
ModelSpec::totalMacs(std::size_t seq_len) const
{
    std::uint64_t macs = 0;
    for (const LayerSpec &l : layers) {
        std::size_t n = l.nOverride ? l.nOverride : seq_len;
        macs += static_cast<std::uint64_t>(l.m) * l.kDim * n * l.repeat;
    }
    return macs;
}

namespace {

/** Standard pre-LN transformer block: QKV, attention out, FC1, FC2. */
std::vector<LayerSpec>
transformerBlock(std::size_t hidden, std::size_t ffn, std::size_t qkv_m,
                 std::uint64_t blocks, double ln_outlier_rate,
                 ActDistKind ffn_act, int mlp_weight_bits)
{
    // Outlier channels appear on every transformer tensor class; they
    // stretch the calibrated range and keep the distribution core
    // inside a few HO buckets (the effect AQS-GEMM exploits).
    std::vector<LayerSpec> layers;
    layers.push_back({"ATTN.QKV", qkv_m, hidden, 0,
                      ActDistKind::LayerNormGauss, 1.0, ln_outlier_rate,
                      blocks, 7, 8});
    layers.push_back({"ATTN.PROJ", hidden, hidden, 0,
                      ActDistKind::PostAttention, 1.0, 0.02, blocks, 7,
                      8});
    layers.push_back({"MLP.FC1", ffn, hidden, 0, ActDistKind::LongTail,
                      1.4, ln_outlier_rate, blocks, mlp_weight_bits, 8});
    layers.push_back({"MLP.FC2", hidden, ffn, 0, ffn_act, 1.0, 0.02,
                      blocks, mlp_weight_bits, 8});
    return layers;
}

} // namespace

ModelSpec
deitBase()
{
    ModelSpec m;
    m.name = "DeiT-base";
    m.layers = transformerBlock(768, 3072, 2304, 12, 0.01,
                                ActDistKind::PostGelu, 7);
    m.seqLen = 200;  // 196 patches + cls, padded to a multiple of v
    m.isLlm = false;
    m.fp32AccPct = 81.8;
    return m;
}

ModelSpec
bertBase()
{
    ModelSpec m;
    m.name = "BERT-base";
    m.layers = transformerBlock(768, 3072, 2304, 12, 0.02,
                                ActDistKind::PostGelu, 7);
    m.seqLen = 128;  // GLUE sentences use fewer tokens (paper §IV)
    m.isLlm = false;
    m.fp32AccPct = 84.5;  // MNLI matched accuracy
    return m;
}

ModelSpec
gpt2()
{
    ModelSpec m;
    m.name = "GPT-2";
    // The paper's footnote: MLP layers of GPT-2 use 10-bit symmetric
    // weights (three SBR slices) to avoid accuracy loss.
    m.layers = transformerBlock(768, 3072, 2304, 12, 0.03,
                                ActDistKind::PostGelu, 10);
    m.seqLen = 1024;  // WikiText-2-class context
    m.isLlm = true;
    m.fp16Ppl = 29.41;  // WikiText-2 anchor
    return m;
}

ModelSpec
resnet18()
{
    ModelSpec m;
    m.name = "ResNet-18";
    m.seqLen = 0;  // all layers carry explicit spatial N
    m.isLlm = false;
    m.fp32AccPct = 69.8;
    // im2col GEMMs; N padded up to a multiple of v where needed.
    m.layers = {
        {"CONV1", 64, 148, 12544, ActDistKind::ImageNorm, 1.0, 0.0, 1, 7,
         8},
        {"CONV2.X", 64, 576, 3136, ActDistKind::PostRelu, 1.0, 0.01, 4, 7,
         8},
        {"CONV3.DS", 128, 64, 784, ActDistKind::PostRelu, 1.0, 0.01, 1, 7,
         8},
        {"CONV3.1", 128, 576, 784, ActDistKind::PostRelu, 1.0, 0.01, 1, 7,
         8},
        {"CONV3.X", 128, 1152, 784, ActDistKind::PostRelu, 1.0, 0.01, 3, 7,
         8},
        {"CONV4.DS", 256, 128, 196, ActDistKind::PostRelu, 1.0, 0.01, 1, 7,
         8},
        {"CONV4.1", 256, 1152, 196, ActDistKind::PostRelu, 1.0, 0.01, 1, 7,
         8},
        {"CONV4.X", 256, 2304, 196, ActDistKind::PostRelu, 1.0, 0.01, 3, 7,
         8},
        {"CONV5.DS", 512, 256, 52, ActDistKind::PostRelu, 1.0, 0.01, 1, 7,
         8},
        {"CONV5.1", 512, 2304, 52, ActDistKind::PostRelu, 1.0, 0.01, 1, 7,
         8},
        {"CONV5.X", 512, 4608, 52, ActDistKind::PostRelu, 1.0, 0.01, 3, 7,
         8},
        {"FC", 1000, 512, 4, ActDistKind::PostRelu, 1.0, 0.01, 1, 7, 8},
    };
    return m;
}

namespace {

ModelSpec
optModel(const char *name, std::size_t hidden, std::size_t ffn,
         std::uint64_t blocks, double ppl)
{
    ModelSpec m;
    m.name = name;
    // OPT uses ReLU FFNs; LayerNorm outputs carry pronounced outlier
    // channels (the OPT family is famous for them).
    m.layers = transformerBlock(hidden, ffn, 3 * hidden, blocks, 0.03,
                                ActDistKind::PostRelu, 7);
    m.seqLen = 1024;  // WikiText-2-class context
    m.isLlm = true;
    m.fp16Ppl = ppl;
    return m;
}

} // namespace

ModelSpec
opt350m()
{
    return optModel("OPT-350M", 1024, 4096, 24, 22.00);
}

ModelSpec
opt1_3b()
{
    return optModel("OPT-1.3B", 2048, 8192, 24, 14.62);
}

ModelSpec
opt2_7b()
{
    return optModel("OPT-2.7B", 2560, 10240, 32, 12.47);
}

namespace {

ModelSpec
llamaModel(const char *name, std::size_t hidden, std::size_t kv_dim,
           std::size_t ffn, std::uint64_t blocks, double ppl)
{
    ModelSpec m;
    m.name = name;
    // Grouped-query attention: QKV rows = hidden + 2 * kv_dim. Gated
    // SiLU MLP: gate/up (hidden -> ffn) and a sensitivity-critical down
    // projection (ffn -> hidden) whose inputs get three bit-slices
    // (12-bit) per the paper.
    m.layers = {
        {"ATTN.QKV", hidden + 2 * kv_dim, hidden, 0,
         ActDistKind::LongTail, 1.5, 0.04, blocks, 7, 8},
        {"ATTN.PROJ", hidden, hidden, 0, ActDistKind::PostAttention, 1.0,
         0.0, blocks, 7, 8},
        {"MLP.GATE", ffn, hidden, 0, ActDistKind::LongTail, 1.5, 0.04,
         blocks, 7, 8},
        {"MLP.UP", ffn, hidden, 0, ActDistKind::LongTail, 1.5, 0.04,
         blocks, 7, 8},
        {"MLP.DOWN", hidden, ffn, 0, ActDistKind::PostGelu, 1.3, 0.02,
         blocks, 7, 12},
    };
    // Llama weights carry large outliers (paper: "more challenging to
    // quantize weights without PPL loss due to structural differences
    // and large outliers"), which OPTQ + channel-wise grouping tames.
    for (LayerSpec &l : m.layers)
        l.weightOutlierRate = 0.02;
    m.seqLen = 1024;  // WikiText-2-class context
    m.isLlm = true;
    m.fp16Ppl = ppl;
    return m;
}

} // namespace

ModelSpec
llama32_1b()
{
    return llamaModel("Llama-3.2-1B", 2048, 512, 8192, 16, 9.75);
}

ModelSpec
llama32_3b()
{
    return llamaModel("Llama-3.2-3B", 3072, 1024, 8192, 28, 7.81);
}

std::vector<ModelSpec>
allModels()
{
    return {deitBase(), bertBase(),   gpt2(),       resnet18(),
            opt350m(),  opt1_3b(),    opt2_7b(),    llama32_1b(),
            llama32_3b()};
}

} // namespace panacea
