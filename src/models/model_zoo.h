/**
 * @file
 * The benchmark model zoo: GEMM-shape descriptions of every model the
 * paper evaluates (DeiT-base, BERT-base, GPT-2, ResNet-18, OPT-350M/
 * 1.3B/2.7B, Llama-3.2-1B/3B), with per-layer distribution classes.
 *
 * Shapes follow the public architectures; distribution assignments
 * follow the paper's observations (e.g. MLP.FC2 inputs are post-GELU
 * and near-zero heavy; LLM LayerNorm outputs carry outlier channels;
 * OPT uses ReLU FFNs; Llama MLPs are gated with a sensitivity-critical
 * down projection).
 */

#ifndef PANACEA_MODELS_MODEL_ZOO_H
#define PANACEA_MODELS_MODEL_ZOO_H

#include <vector>

#include "models/layer.h"

namespace panacea {

/** @return DeiT-base (ImageNet-1k): 12 blocks, hidden 768, 200 tokens. */
ModelSpec deitBase();

/** @return BERT-base (GLUE): 12 blocks, hidden 768, 128 tokens. */
ModelSpec bertBase();

/** @return GPT-2 124M (WikiText-2): 12 blocks; 10-bit MLP weights. */
ModelSpec gpt2();

/** @return ResNet-18 (ImageNet-1k) as im2col GEMMs. */
ModelSpec resnet18();

/** @return OPT-350M (WikiText-2). */
ModelSpec opt350m();
/** @return OPT-1.3B (WikiText-2). */
ModelSpec opt1_3b();
/** @return OPT-2.7B (WikiText-2). */
ModelSpec opt2_7b();

/** @return Llama-3.2-1B (WikiText-2); 12-bit down-projection inputs. */
ModelSpec llama32_1b();
/** @return Llama-3.2-3B (WikiText-2). */
ModelSpec llama32_3b();

/** @return every model above (for sweep benches). */
std::vector<ModelSpec> allModels();

} // namespace panacea

#endif // PANACEA_MODELS_MODEL_ZOO_H
