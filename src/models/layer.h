/**
 * @file
 * Benchmark layer and model descriptors.
 *
 * Substitution note (DESIGN.md §2): instead of HuggingFace checkpoints,
 * each benchmark is described by its exact GEMM shapes plus a
 * distribution class per layer input. The synthetic generator reproduces
 * the distribution families that drive bit-slice sparsity (LayerNorm
 * Gaussians with outlier channels, post-GELU/ReLU one-sided tails, ...).
 */

#ifndef PANACEA_MODELS_LAYER_H
#define PANACEA_MODELS_LAYER_H

#include <cstdint>
#include <string>
#include <vector>

#include "arch/ppu.h"

namespace panacea {

/** Distribution family of a layer's input activation. */
enum class ActDistKind
{
    LayerNormGauss,  ///< LayerNorm output: near-Gaussian, mild skew
    PostGelu,        ///< GELU output: one-sided with heavy positive tail
    PostRelu,        ///< ReLU output: exact zeros + positive half
    PostAttention,   ///< attention-block output: centred, moderate
    LongTail,        ///< outlier-channel Laplace mixture (LLM LN outputs)
    ImageNorm,       ///< normalized image input (first conv)
};

/** @return printable name of a distribution family. */
const char *toString(ActDistKind kind);

/** One (unique) GEMM layer of a benchmark model. */
struct LayerSpec
{
    std::string name;        ///< e.g. "ATTN.QKV"
    std::size_t m = 0;       ///< weight rows (output features)
    std::size_t kDim = 0;    ///< weight cols (input features)
    std::size_t nOverride = 0; ///< fixed N (convs); 0 = model seq length
    ActDistKind dist = ActDistKind::LayerNormGauss;
    double spread = 1.0;     ///< distribution width multiplier
    double outlierRate = 0.0; ///< fraction of outlier channels
    std::uint64_t repeat = 1; ///< identical blocks in the model
    int weightBits = 7;      ///< (3n+4); 4 and 10 used by some layers
    int actBits = 8;         ///< (4k+4); 12 for sensitivity-critical
    /**
     * Fraction of weight rows with outlier magnitudes. Zero for most
     * models; the Llama-3.2 family's weight outliers are what makes it
     * "challenging to quantize without PPL loss" (paper §IV).
     */
    double weightOutlierRate = 0.0;
};

/** A full benchmark model: layer list + evaluation metadata. */
struct ModelSpec
{
    std::string name;
    std::vector<LayerSpec> layers;
    std::size_t seqLen = 256;  ///< default N (tokens / batch-spatial)
    bool isLlm = false;        ///< perplexity (true) vs accuracy metric
    double fp16Ppl = 0.0;      ///< FP16 perplexity anchor (LLMs)
    double fp32AccPct = 0.0;   ///< FP32 accuracy anchor (classifiers)

    /** @return total dense-equivalent MACs at the given sequence len. */
    std::uint64_t totalMacs(std::size_t seq_len) const;
};

} // namespace panacea

#endif // PANACEA_MODELS_LAYER_H
