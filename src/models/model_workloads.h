/**
 * @file
 * The bridge from benchmark models to accelerator workloads: for every
 * (unique) layer of a model it generates synthetic tensors, runs the
 * Panacea PTQ calibration (asymmetric + ZPM + DBS) and the Sibia-style
 * symmetric calibration, slices/compresses both, and emits the
 * compression-mask workloads for the cycle simulators together with
 * sparsity and quantization-fidelity measurements.
 */

#ifndef PANACEA_MODELS_MODEL_WORKLOADS_H
#define PANACEA_MODELS_MODEL_WORKLOADS_H

#include <vector>

#include "arch/workload.h"
#include "models/layer.h"
#include "quant/dbs.h"
#include "slicing/sparsity.h"

namespace panacea {

/** Options controlling workload construction. */
struct ModelBuildOptions
{
    std::size_t seqLen = 0;        ///< 0 = model default
    bool enableZpm = true;
    bool enableDbs = true;
    /** Extension: histogram-aware zero-point phase (see zpm.h). */
    bool histAwareZpm = false;
    ActSkipMode actSkip = ActSkipMode::RValued;
    int weightBitsOverride = 0;    ///< e.g. 4 for the Fig. 19 study
    bool symmetricActs = false;    ///< Panacea-sym mode (Fig. 18(a))
    std::uint64_t seed = 0x5eed;
    std::size_t calibTokens = 64;  ///< tokens per calibration batch
    double dbsTargetMass = 0.90;
    int rleIndexBits = 4;
    int v = 4;
};

/** Everything derived from one unique model layer. */
struct LayerBuild
{
    LayerSpec spec;
    std::size_t n = 0;           ///< evaluation N actually used
    GemmWorkload panacea;        ///< Panacea-format workload
    GemmWorkload sibia;          ///< Sibia-format workload
    DbsDecision dbs;             ///< calibration decision (Panacea)
    std::int32_t rawZeroPoint = 0; ///< zero point before ZPM
    SparsityReport weightHo;     ///< shared weight HO sparsity
    SparsityReport actHoPanacea; ///< r-valued HO sparsity (post ZPM/DBS)
    SparsityReport actHoSibia;   ///< zero-valued HO sparsity (symmetric)
    /**
     * Zero-valued HO sparsity of the *asymmetric* codes: what a
     * previous bit-slice GEMM could skip on this quantization
     * (paper Fig. 14(a), "previous bit-slice GEMMs" series).
     */
    SparsityReport actHoAsymZeroSkip;
    double actNmseAsym = 0.0;    ///< Panacea activation fidelity
    double actNmseSym = 0.0;     ///< symmetric activation fidelity
    double weightNmse = 0.0;     ///< weight fidelity (OPTQ-adjusted)
};

/** A fully built model. */
struct ModelBuild
{
    ModelSpec spec;
    ModelBuildOptions options;
    std::vector<LayerBuild> layers;

    /** @return workloads for Panacea-format accelerators. */
    std::vector<GemmWorkload> panaceaWorkloads() const;
    /** @return workloads for the Sibia baseline. */
    std::vector<GemmWorkload> sibiaWorkloads() const;

    /** MAC-weighted mean activation NMSE (asymmetric path). */
    double meanNmseAsym() const;
    /** MAC-weighted mean activation NMSE (symmetric path). */
    double meanNmseSym() const;
    /** MAC-weighted mean weight NMSE. */
    double meanWeightNmse() const;
};

/** Build all unique layers of a model. */
ModelBuild buildModel(const ModelSpec &spec,
                      const ModelBuildOptions &options);

/** Build a single layer (exposed for tests and focused benches). */
LayerBuild buildLayer(const LayerSpec &spec, std::size_t n,
                      const ModelBuildOptions &options, Rng &rng);

} // namespace panacea

#endif // PANACEA_MODELS_MODEL_WORKLOADS_H
