/**
 * @file
 * Quantization-fidelity proxy for accuracy and perplexity (substitution
 * for full dataset evaluation; DESIGN.md §2).
 *
 * The paper's algorithm-level claims are *orderings* (asymmetric beats
 * symmetric activations; AQS-GEMM is exact, so its PPL equals its
 * quantizer's). We measure the per-layer normalized quantization MSE of
 * each scheme on the synthetic tensors and map its mean through a
 * monotone proxy anchored at the model's FP16 perplexity / FP32
 * accuracy. Absolute values are indicative; orderings and gaps are the
 * reproduced quantities.
 */

#ifndef PANACEA_MODELS_ACCURACY_PROXY_H
#define PANACEA_MODELS_ACCURACY_PROXY_H

#include "quant/quant_params.h"
#include "util/matrix.h"

namespace panacea {

/**
 * Normalized quantization MSE: E[(x - dq(q(x)))^2] / E[x^2] for the
 * given quantizer.
 */
double quantizationNmse(const MatrixF &x, const QuantParams &params);

/**
 * As above, but with the DBS LSB truncation applied to the codes
 * (models the 0.6%p-class loss of wide-distribution slicing).
 */
double quantizationNmseDbs(const MatrixF &x, const QuantParams &params,
                           int lo_bits);

/**
 * Weight NMSE under per-output-channel (row-wise) symmetric scales, the
 * grain OPTQ-class weight quantizers operate at. Row scales fold into
 * the per-row output dequantization, so this is hardware-free.
 */
double quantizationNmsePerRow(const MatrixF &w, int bits);

/**
 * Perplexity proxy: fp_ppl * exp(alpha * mean_nmse), a monotone map
 * that reduces to the FP16 anchor at zero error.
 */
double proxyPerplexity(double fp_ppl, double mean_nmse,
                       double alpha = 5.0);

/**
 * Accuracy-loss proxy in percentage points: beta * sqrt(mean_nmse),
 * clipped to the anchor accuracy.
 */
double proxyAccuracyLossPct(double mean_nmse, double beta = 18.0);

/**
 * Error-reduction factor modeling OPTQ's second-order weight
 * compensation for sub-7-bit weights (paper Fig. 19 context): OPTQ
 * recovers most of the naive rounding loss.
 */
inline constexpr double optqErrorFactor = 0.25;

} // namespace panacea

#endif // PANACEA_MODELS_ACCURACY_PROXY_H
