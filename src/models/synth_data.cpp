#include "models/synth_data.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "arch/ppu.h"
#include "util/logging.h"

namespace panacea {

MatrixF
genWeights(Rng &rng, std::size_t m, std::size_t k, double outlier_rate)
{
    MatrixF w(m, k);
    // Trained DNN weights are leptokurtic (Laplace-like): most values
    // hug zero while the per-tensor maximum is a rare outlier. That
    // shape is what gives bit-slice accelerators their high HO-slice
    // sparsity (>90% slice-level in the paper's dense models). Per-row
    // scale variation models output-channel heterogeneity; a small
    // fraction of rows may carry outlier magnitudes (Llama).
    const double base = 1.0 / std::sqrt(static_cast<double>(k));
    for (std::size_t r = 0; r < m; ++r) {
        double row_scale =
            base * std::abs(rng.gaussian(1.0, 0.15));
        if (outlier_rate > 0.0 && rng.bernoulli(outlier_rate))
            row_scale *= 8.0;
        const double laplace_b = row_scale / std::sqrt(2.0);
        for (std::size_t c = 0; c < k; ++c)
            w(r, c) = static_cast<float>(rng.laplace(0.0, laplace_b));
    }
    return w;
}

MatrixF
genActivations(Rng &rng, std::size_t k, std::size_t n, ActDistKind kind,
               double spread, double outlier_rate)
{
    MatrixF x(k, n);

    // Per-channel parameters, shared across tokens: the channel
    // structure is what creates LLM outlier dimensions and stable
    // zero points.
    std::vector<double> mu(k);
    std::vector<double> sigma(k);
    for (std::size_t c = 0; c < k; ++c) {
        mu[c] = rng.gaussian(0.0, 0.3 * spread);
        sigma[c] = std::abs(rng.gaussian(1.0, 0.2)) * spread;
        if (outlier_rate > 0.0 && rng.bernoulli(outlier_rate)) {
            mu[c] *= 4.0;
            sigma[c] *= 8.0;
        }
    }

    for (std::size_t c = 0; c < k; ++c) {
        for (std::size_t t = 0; t < n; ++t) {
            double value = 0.0;
            switch (kind) {
              case ActDistKind::LayerNormGauss:
                value = rng.gaussian(mu[c] * 0.3, sigma[c]);
                break;
              case ActDistKind::PostGelu:
                value = geluExact(static_cast<float>(
                    rng.gaussian(mu[c] * 0.2, sigma[c])));
                break;
              case ActDistKind::PostRelu:
                value = std::max(0.0, rng.gaussian(mu[c] * 0.2,
                                                   sigma[c]));
                break;
              case ActDistKind::PostAttention:
                // Attention outputs are convex combinations of value
                // rows: tightly concentrated around the channel mean.
                value = rng.gaussian(mu[c] * 0.1, 0.35 * sigma[c]);
                break;
              case ActDistKind::LongTail:
                value = rng.laplace(mu[c], 0.7 * sigma[c]);
                break;
              case ActDistKind::ImageNorm:
                value = rng.gaussian(0.0, 1.0);
                break;
            }
            x(c, t) = static_cast<float>(value);
        }
    }
    return x;
}

MatrixF
genLayerActivations(Rng &rng, const LayerSpec &layer, std::size_t n)
{
    return genActivations(rng, layer.kDim, n, layer.dist, layer.spread,
                          layer.outlierRate);
}

} // namespace panacea
