#include "models/model_workloads.h"

#include <algorithm>

#include "models/accuracy_proxy.h"
#include "models/synth_data.h"
#include "quant/calibration.h"
#include "quant/quantizer.h"
#include "quant/zpm.h"
#include "slicing/sbr.h"
#include "slicing/slice_tensor.h"
#include "slicing/straightforward.h"
#include "util/logging.h"

namespace panacea {

namespace {

/** Round n up to a multiple of v (evaluation tensors must group). */
std::size_t
roundUpTo(std::size_t n, int v)
{
    std::size_t rem = n % static_cast<std::size_t>(v);
    return rem == 0 ? n : n + (static_cast<std::size_t>(v) - rem);
}

} // namespace

LayerBuild
buildLayer(const LayerSpec &spec, std::size_t n,
           const ModelBuildOptions &opt, Rng &rng)
{
    LayerBuild lb;
    lb.spec = spec;
    lb.n = roundUpTo(n, opt.v);

    const int weight_bits =
        opt.weightBitsOverride ? opt.weightBitsOverride : spec.weightBits;
    const int weight_n = sbrLoSliceCount(weight_bits);
    const int act_k = activationLoSliceCount(spec.actBits);

    AqsConfig gemm_cfg;
    gemm_cfg.v = opt.v;
    gemm_cfg.rleIndexBits = opt.rleIndexBits;
    gemm_cfg.actSkip = opt.actSkip;

    // --- Weights: symmetric quantization + SBR + compression ---
    MatrixF w = genWeights(rng, spec.m, spec.kDim,
                           spec.weightOutlierRate);
    QuantParams w_params = chooseSymmetricParams(w.data(), weight_bits);
    MatrixI32 w_codes = quantize(w, w_params);
    WeightOperand w_op = prepareWeights(w_codes, weight_n, gemm_cfg);

    if (weight_bits < 7 || spec.weightOutlierRate > 0.0) {
        // OPTQ-class weight-only quantization operates channel-wise and
        // compensates rounding with second-order updates (paper applies
        // OPTQ for n = 0 and for the outlier-heavy Llama family).
        lb.weightNmse =
            quantizationNmsePerRow(w, weight_bits) * optqErrorFactor;
    } else {
        lb.weightNmse = quantizationNmse(w, w_params);
    }
    if (w_op.sliced.levels() >= 2) {
        lb.weightHo = analyzeWeightHo(w_op.sliced.hoPlane().data, opt.v);
    }

    // --- Activations: calibration batches + evaluation tensor ---
    MatrixF calib_a = genLayerActivations(rng, spec, opt.calibTokens);
    MatrixF calib_b = genLayerActivations(rng, spec, opt.calibTokens);
    MatrixF eval = genLayerActivations(rng, spec, lb.n);

    // Asymmetric path (Panacea).
    QuantParams x_params;
    if (opt.symmetricActs) {
        // Fig. 18(a): symmetric operation on Panacea = zero point pinned
        // to mid-range within the unsigned 8-bit space.
        Calibrator sym_cal(QuantScheme::Symmetric, spec.actBits);
        sym_cal.observe(calib_a);
        sym_cal.observe(calib_b);
        QuantParams sym = sym_cal.finalize();
        x_params.scheme = QuantScheme::Asymmetric;
        x_params.bits = spec.actBits;
        x_params.scale = sym.scale;
        x_params.zeroPoint = 1 << (spec.actBits - 1);
    } else {
        Calibrator cal(QuantScheme::Asymmetric, spec.actBits);
        cal.observe(calib_a);
        cal.observe(calib_b);
        x_params = cal.finalize();
    }
    lb.rawZeroPoint = x_params.zeroPoint;

    // ZPM / DBS on the calibration histograms (paper Fig. 6 flow).
    const int base_lo_bits = 4 * act_k;
    if (opt.enableDbs && spec.actBits == 8) {
        Histogram hist(0, x_params.codeMax());
        for (const MatrixF *batch : {&calib_a, &calib_b}) {
            MatrixI32 codes = quantize(*batch, x_params);
            for (auto c : codes.data())
                hist.add(c);
        }
        DbsConfig dbs_cfg;
        dbs_cfg.targetMass = opt.dbsTargetMass;
        dbs_cfg.bits = spec.actBits;
        dbs_cfg.enableZpm = opt.enableZpm;
        dbs_cfg.histAwareZpm = opt.histAwareZpm;
        lb.dbs = classifyDistribution(hist, x_params.zeroPoint, dbs_cfg);
        x_params = refitScaleForZeroPoint(x_params, lb.dbs.zpm.zeroPoint);
    } else if (opt.enableZpm) {
        lb.dbs.type = DbsType::Type1;
        lb.dbs.loBits = base_lo_bits;
        if (opt.histAwareZpm && spec.actBits == 8) {
            Histogram hist(0, x_params.codeMax());
            for (const MatrixF *batch : {&calib_a, &calib_b}) {
                MatrixI32 codes = quantize(*batch, x_params);
                for (auto c : codes.data())
                    hist.add(c);
            }
            lb.dbs.zpm = manipulateZeroPointHistAware(
                hist, x_params.zeroPoint, spec.actBits, base_lo_bits);
        } else {
            lb.dbs.zpm = manipulateZeroPoint(x_params.zeroPoint,
                                             spec.actBits, base_lo_bits);
        }
        x_params = refitScaleForZeroPoint(x_params, lb.dbs.zpm.zeroPoint);
    } else {
        lb.dbs.type = DbsType::Type1;
        lb.dbs.loBits = base_lo_bits;
        lb.dbs.zpm.zeroPoint = x_params.zeroPoint;
        lb.dbs.zpm.frequentSlice =
            frequentSliceOf(x_params.zeroPoint, base_lo_bits);
    }

    MatrixI32 x_codes =
        (spec.actBits == 8 && lb.dbs.loBits > 4)
            ? quantizeCoarse(eval, x_params, lb.dbs.loBits - 4)
            : quantize(eval, x_params);
    ActivationOperand x_op;
    if (spec.actBits == 8 && lb.dbs.loBits != 4) {
        x_op = prepareActivationsDbs(
            x_codes, lb.dbs.loBits,
            static_cast<Slice>(lb.dbs.zpm.frequentSlice), gemm_cfg);
    } else {
        x_op = prepareActivations(x_codes, act_k, x_params.zeroPoint,
                                  gemm_cfg);
    }

    lb.actNmseAsym =
        (spec.actBits == 8 && lb.dbs.loBits != 4)
            ? quantizationNmseDbs(eval, x_params, lb.dbs.loBits)
            : quantizationNmse(eval, x_params);
    lb.actHoPanacea =
        analyzeActivationHo(x_op.sliced.hoPlane().data, opt.v, x_op.r);
    lb.actHoAsymZeroSkip =
        analyzeActivationHo(x_op.sliced.hoPlane().data, opt.v, 0);

    lb.panacea = GemmWorkload::fromOperands(
        spec.name, w_op, x_op, opt.v, spec.repeat);
    lb.panacea.weightBits = weight_bits;
    lb.panacea.actBits = spec.actBits;

    // --- Sibia path: symmetric (3k+4)-bit activations, SBR slicing,
    // zero-vector skipping. ---
    const int sibia_act_bits = 3 * act_k + 4;
    Calibrator sib_cal(QuantScheme::Symmetric, sibia_act_bits);
    sib_cal.observe(calib_a);
    sib_cal.observe(calib_b);
    QuantParams sib_params = sib_cal.finalize();
    MatrixI32 sib_codes = quantize(eval, sib_params);
    SlicedMatrix sib_sliced = sbrSliceMatrix(sib_codes, act_k);
    lb.actNmseSym = quantizationNmse(eval, sib_params);
    lb.actHoSibia =
        analyzeActivationHo(sib_sliced.hoPlane().data, opt.v, 0);

    lb.sibia.name = spec.name;
    lb.sibia.m = spec.m;
    lb.sibia.k = spec.kDim;
    lb.sibia.n = lb.n;
    lb.sibia.wLevels = static_cast<int>(w_op.sliced.levels());
    lb.sibia.xLevels = act_k + 1;
    lb.sibia.weightBits = weight_bits;
    lb.sibia.actBits = sibia_act_bits;
    lb.sibia.weightHoSkippable = w_op.sliced.levels() >= 2;
    lb.sibia.wMask = w_op.hoMask;
    lb.sibia.xMask =
        activationVectorMask(sib_sliced.hoPlane().data, opt.v, 0);
    lb.sibia.repeat = spec.repeat;
    return lb;
}

ModelBuild
buildModel(const ModelSpec &spec, const ModelBuildOptions &options)
{
    ModelBuild build;
    build.spec = spec;
    build.options = options;
    Rng rng(options.seed ^ std::hash<std::string>{}(spec.name));

    for (const LayerSpec &layer : spec.layers) {
        std::size_t n =
            layer.nOverride ? layer.nOverride
                            : (options.seqLen ? options.seqLen
                                              : spec.seqLen);
        Rng layer_rng = rng.fork();
        build.layers.push_back(buildLayer(layer, n, options, layer_rng));
    }
    return build;
}

std::vector<GemmWorkload>
ModelBuild::panaceaWorkloads() const
{
    std::vector<GemmWorkload> out;
    out.reserve(layers.size());
    for (const LayerBuild &lb : layers)
        out.push_back(lb.panacea);
    return out;
}

std::vector<GemmWorkload>
ModelBuild::sibiaWorkloads() const
{
    std::vector<GemmWorkload> out;
    out.reserve(layers.size());
    for (const LayerBuild &lb : layers)
        out.push_back(lb.sibia);
    return out;
}

namespace {

double
macWeightedMean(const std::vector<LayerBuild> &layers,
                double LayerBuild::*field)
{
    double weighted = 0.0;
    double total = 0.0;
    for (const LayerBuild &lb : layers) {
        double macs = static_cast<double>(lb.panacea.usefulMacs());
        weighted += lb.*field * macs;
        total += macs;
    }
    return total > 0.0 ? weighted / total : 0.0;
}

} // namespace

double
ModelBuild::meanNmseAsym() const
{
    return macWeightedMean(layers, &LayerBuild::actNmseAsym);
}

double
ModelBuild::meanNmseSym() const
{
    return macWeightedMean(layers, &LayerBuild::actNmseSym);
}

double
ModelBuild::meanWeightNmse() const
{
    return macWeightedMean(layers, &LayerBuild::weightNmse);
}

} // namespace panacea
