/**
 * @file
 * Aggregated performance results of one accelerator run: cycles, energy
 * breakdown and the derived figures of merit the paper reports
 * (throughput in effective TOPS, energy efficiency in TOPS/W).
 */

#ifndef PANACEA_SIM_PERF_STATS_H
#define PANACEA_SIM_PERF_STATS_H

#include <string>

#include "sim/counters.h"
#include "sim/energy_model.h"

namespace panacea {

/** A complete accelerator run result. */
struct PerfResult
{
    std::string accelerator;    ///< design name
    std::string workload;       ///< workload/model name
    OpCounters counters;
    EnergyBreakdown energy;
    double clockGhz = 0.5;
    int multipliers = 3072;     ///< 4b x 4b multiplier budget

    /**
     * Multiplier utilization: executed 4b x 4b multiplies over the
     * multiplier-cycle slots available during the run. Comparable
     * across designs thanks to the shared multiplier normalization;
     * memory-bound phases lower it (paper Fig. 13's utilization
     * discussion).
     */
    double opUtilization() const;

    /** @return wall-clock seconds of the run. */
    double seconds() const;

    /** @return effective tera-ops/s (2 ops per dense-equivalent MAC). */
    double tops() const;

    /** @return average power in watts. */
    double watts() const;

    /** @return energy efficiency in effective TOPS/W. */
    double topsPerWatt() const;

    /** @return total energy in millijoules. */
    double totalMj() const { return energy.totalPJ() * 1e-9; }

    /** Merge another result (same accelerator, further layers). */
    PerfResult &operator+=(const PerfResult &other);
};

} // namespace panacea

#endif // PANACEA_SIM_PERF_STATS_H
