#include "sim/energy_model.h"

namespace panacea {

EnergyBreakdown
EnergyModel::compute(const OpCounters &c) const
{
    EnergyBreakdown e;
    e.computePJ = static_cast<double>(c.mults4b) * table_.mult4bPJ +
                  static_cast<double>(c.adds) * table_.addPJ +
                  static_cast<double>(c.shifts) * table_.shiftPJ;
    e.ppuPJ = static_cast<double>(c.ppuOps) * table_.ppuOpPJ;
    e.sramPJ =
        static_cast<double>(c.sramReadBytes) * table_.sramReadPJPerByte +
        static_cast<double>(c.sramWriteBytes) * table_.sramWritePJPerByte;
    e.dramPJ = static_cast<double>(c.dramReadBytes + c.dramWriteBytes) *
               table_.dramPJPerByte;
    e.controlPJ = static_cast<double>(c.cycles) * table_.controlPJPerCycle;
    return e;
}

} // namespace panacea
