/**
 * @file
 * 28 nm energy model (substitution for the paper's post-layout numbers
 * and the CACTI 7.0 DRAM emulator; see DESIGN.md §2).
 *
 * Per-operation energies are derived from the widely used Horowitz
 * ISSCC'14 45 nm table scaled to 28 nm (~0.5x logic, ~0.7x SRAM). The
 * relative magnitudes (DRAM >> SRAM >> MAC) drive every ratio the paper
 * reports; absolute joules are indicative only.
 */

#ifndef PANACEA_SIM_ENERGY_MODEL_H
#define PANACEA_SIM_ENERGY_MODEL_H

#include "sim/counters.h"

namespace panacea {

/** Energy of one run, split by component (picojoules). */
struct EnergyBreakdown
{
    double computePJ = 0.0;   ///< multipliers + adders + shifters
    double ppuPJ = 0.0;       ///< post-processing unit
    double sramPJ = 0.0;      ///< on-chip buffer traffic
    double dramPJ = 0.0;      ///< external memory traffic
    double controlPJ = 0.0;   ///< clock tree / control per cycle

    /** @return sum of all components, in pJ. */
    double
    totalPJ() const
    {
        return computePJ + ppuPJ + sramPJ + dramPJ + controlPJ;
    }

    EnergyBreakdown &
    operator+=(const EnergyBreakdown &o)
    {
        computePJ += o.computePJ;
        ppuPJ += o.ppuPJ;
        sramPJ += o.sramPJ;
        dramPJ += o.dramPJ;
        controlPJ += o.controlPJ;
        return *this;
    }
};

/** Per-operation energy table (picojoules). */
struct EnergyTable
{
    /**
     * Multiplier energy includes local operand delivery (buffer mux /
     * routing into the OPC), the part of the datapath a skipped outer
     * product also saves.
     */
    double mult4bPJ = 0.06;        ///< 4b x 4b multiply + operand feed
    double addPJ = 0.03;           ///< accumulator add
    double shiftPJ = 0.004;        ///< barrel shift
    double ppuOpPJ = 0.05;         ///< PPU op (PWL segment, requant)
    double sramReadPJPerByte = 0.80;
    double sramWritePJPerByte = 1.00;
    double dramPJPerByte = 25.0;   ///< LPDDR4-class access energy
    double controlPJPerCycle = 18.0; ///< clock/control overhead
};

/**
 * Converts activity counters into an energy breakdown.
 */
class EnergyModel
{
  public:
    EnergyModel() = default;
    explicit EnergyModel(const EnergyTable &table) : table_(table) {}

    /** @return the energy of the given activity. */
    EnergyBreakdown compute(const OpCounters &counters) const;

    /** @return the per-op table in use. */
    const EnergyTable &table() const { return table_; }

  private:
    EnergyTable table_;
};

} // namespace panacea

#endif // PANACEA_SIM_ENERGY_MODEL_H
