/**
 * @file
 * On-chip SRAM model: capacity bookkeeping and access counting.
 *
 * All accelerator models are normalized to 192 KB of on-chip SRAM
 * (paper §IV); this class tracks one partition (WMEM, AMEM or OMEM).
 */

#ifndef PANACEA_SIM_SRAM_H
#define PANACEA_SIM_SRAM_H

#include <cstdint>
#include <string>

#include "util/logging.h"

namespace panacea {

/** One on-chip SRAM partition. */
class SramModel
{
  public:
    /** Construct a partition with the given capacity in bytes. */
    SramModel(std::string name, std::uint64_t capacity_bytes)
        : name_(std::move(name)), capacity_(capacity_bytes)
    {}

    /** @return whether a working set fits in this partition. */
    bool fits(std::uint64_t bytes) const { return bytes <= capacity_; }

    /** Record a read of the given size. */
    void read(std::uint64_t bytes) { readBytes_ += bytes; }

    /** Record a write of the given size. */
    void write(std::uint64_t bytes) { writeBytes_ += bytes; }

    /** @return capacity in bytes. */
    std::uint64_t capacity() const { return capacity_; }
    /** @return cumulative bytes read. */
    std::uint64_t readBytes() const { return readBytes_; }
    /** @return cumulative bytes written. */
    std::uint64_t writeBytes() const { return writeBytes_; }
    /** @return the partition name. */
    const std::string &name() const { return name_; }

    /** Clear the access counters. */
    void
    reset()
    {
        readBytes_ = 0;
        writeBytes_ = 0;
    }

  private:
    std::string name_;
    std::uint64_t capacity_;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
};

} // namespace panacea

#endif // PANACEA_SIM_SRAM_H
