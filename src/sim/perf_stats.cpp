#include "sim/perf_stats.h"

#include "util/logging.h"

namespace panacea {

double
PerfResult::opUtilization() const
{
    if (counters.cycles == 0 || multipliers <= 0)
        return 0.0;
    return static_cast<double>(counters.mults4b) /
           (static_cast<double>(counters.cycles) *
            static_cast<double>(multipliers));
}

double
PerfResult::seconds() const
{
    return static_cast<double>(counters.cycles) / (clockGhz * 1e9);
}

double
PerfResult::tops() const
{
    double s = seconds();
    if (s <= 0.0)
        return 0.0;
    return 2.0 * static_cast<double>(counters.usefulMacs) / s / 1e12;
}

double
PerfResult::watts() const
{
    double s = seconds();
    if (s <= 0.0)
        return 0.0;
    return energy.totalPJ() * 1e-12 / s;
}

double
PerfResult::topsPerWatt() const
{
    double e = energy.totalPJ();
    if (e <= 0.0)
        return 0.0;
    return 2.0 * static_cast<double>(counters.usefulMacs) / e;
}

PerfResult &
PerfResult::operator+=(const PerfResult &other)
{
    panic_if(clockGhz != other.clockGhz,
             "merging results at different clocks");
    counters += other.counters;
    energy += other.energy;
    return *this;
}

} // namespace panacea
