/**
 * @file
 * Relative area model (substitution for the paper's 28 nm layouts,
 * Fig. 15(c) and Fig. 20). Gate-count-level estimates per module class;
 * only *relative* comparisons between configurations are meaningful.
 */

#ifndef PANACEA_SIM_AREA_MODEL_H
#define PANACEA_SIM_AREA_MODEL_H

#include <cstdint>

namespace panacea {

/** Per-module area constants (um^2, 28 nm-class standard cells). */
struct AreaTable
{
    double mult4bUm2 = 180.0;      ///< one 4b x 4b sign-unsigned multiplier
    double adderUm2 = 70.0;        ///< one accumulator adder
    double shifterUm2 = 45.0;      ///< one S-ACC barrel shifter
    double sramUm2PerByte = 2.1;   ///< on-chip SRAM macro density
    double bufferUm2PerByte = 3.4; ///< register-file buffers (WBUF etc.)
    double decoderUm2 = 900.0;     ///< one RLE index decoder
    double schedulerUm2 = 2200.0;  ///< one workload scheduler
    double ppuUm2 = 60000.0;       ///< post-processing unit
    double controlUm2 = 150000.0;  ///< top controller + NoC glue
};

/** Inputs of an area estimate. */
struct AreaInputs
{
    std::uint64_t multipliers = 0;
    std::uint64_t adders = 0;
    std::uint64_t shifters = 0;
    std::uint64_t sramBytes = 0;
    std::uint64_t bufferBytes = 0;
    std::uint64_t decoders = 0;
    std::uint64_t schedulers = 0;
    bool hasPpu = true;
};

/** @return the estimated core area in mm^2. */
double estimateAreaMm2(const AreaInputs &inputs,
                       const AreaTable &table = AreaTable{});

} // namespace panacea

#endif // PANACEA_SIM_AREA_MODEL_H
