/**
 * @file
 * Hardware activity counters shared by the Panacea and baseline cycle
 * simulators. Every simulator fills one of these; the energy model turns
 * it into joules.
 */

#ifndef PANACEA_SIM_COUNTERS_H
#define PANACEA_SIM_COUNTERS_H

#include <cstdint>

namespace panacea {

/** Raw activity counts of one accelerator run. */
struct OpCounters
{
    std::uint64_t mults4b = 0;      ///< 4b x 4b multiplications
    std::uint64_t adds = 0;         ///< accumulator additions (8-32b)
    std::uint64_t shifts = 0;       ///< S-ACC / DBS barrel shifts
    std::uint64_t ppuOps = 0;       ///< PPU post-processing operations
    std::uint64_t sramReadBytes = 0;
    std::uint64_t sramWriteBytes = 0;
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;
    std::uint64_t cycles = 0;       ///< total elapsed cycles
    std::uint64_t usefulMacs = 0;   ///< effective (dense-equivalent) MACs

    /** Element-wise accumulate. */
    OpCounters &
    operator+=(const OpCounters &o)
    {
        mults4b += o.mults4b;
        adds += o.adds;
        shifts += o.shifts;
        ppuOps += o.ppuOps;
        sramReadBytes += o.sramReadBytes;
        sramWriteBytes += o.sramWriteBytes;
        dramReadBytes += o.dramReadBytes;
        dramWriteBytes += o.dramWriteBytes;
        cycles += o.cycles;
        usefulMacs += o.usefulMacs;
        return *this;
    }

    /** Scale every counter by an integer repeat factor. */
    OpCounters &
    scale(std::uint64_t factor)
    {
        mults4b *= factor;
        adds *= factor;
        shifts *= factor;
        ppuOps *= factor;
        sramReadBytes *= factor;
        sramWriteBytes *= factor;
        dramReadBytes *= factor;
        dramWriteBytes *= factor;
        cycles *= factor;
        usefulMacs *= factor;
        return *this;
    }
};

} // namespace panacea

#endif // PANACEA_SIM_COUNTERS_H
