#include "sim/area_model.h"

namespace panacea {

double
estimateAreaMm2(const AreaInputs &in, const AreaTable &t)
{
    double um2 = 0.0;
    um2 += static_cast<double>(in.multipliers) * t.mult4bUm2;
    um2 += static_cast<double>(in.adders) * t.adderUm2;
    um2 += static_cast<double>(in.shifters) * t.shifterUm2;
    um2 += static_cast<double>(in.sramBytes) * t.sramUm2PerByte;
    um2 += static_cast<double>(in.bufferBytes) * t.bufferUm2PerByte;
    um2 += static_cast<double>(in.decoders) * t.decoderUm2;
    um2 += static_cast<double>(in.schedulers) * t.schedulerUm2;
    um2 += in.hasPpu ? t.ppuUm2 : 0.0;
    um2 += t.controlUm2;
    return um2 * 1e-6;
}

} // namespace panacea
