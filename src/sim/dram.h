/**
 * @file
 * External-memory channel model: a fixed bytes-per-cycle bandwidth
 * (paper: 256 bit/cycle) with access counting. Latency is absorbed into
 * the bandwidth-limited transfer time, matching the paper's
 * double-buffered DMA assumption.
 */

#ifndef PANACEA_SIM_DRAM_H
#define PANACEA_SIM_DRAM_H

#include <cstdint>

#include "util/logging.h"

namespace panacea {

/** A bandwidth-limited DRAM channel. */
class DramModel
{
  public:
    /** @param bytes_per_cycle channel bandwidth (paper: 32 B/cycle). */
    explicit DramModel(std::uint64_t bytes_per_cycle = 32)
        : bytesPerCycle_(bytes_per_cycle)
    {
        fatal_if(bytes_per_cycle == 0, "DRAM bandwidth must be positive");
    }

    /** @return cycles to transfer the given number of bytes. */
    std::uint64_t
    cyclesFor(std::uint64_t bytes) const
    {
        return (bytes + bytesPerCycle_ - 1) / bytesPerCycle_;
    }

    /** Record a read transfer. */
    void read(std::uint64_t bytes) { readBytes_ += bytes; }
    /** Record a write transfer. */
    void write(std::uint64_t bytes) { writeBytes_ += bytes; }

    /** @return channel bandwidth in bytes per cycle. */
    std::uint64_t bytesPerCycle() const { return bytesPerCycle_; }
    /** @return cumulative bytes read. */
    std::uint64_t readBytes() const { return readBytes_; }
    /** @return cumulative bytes written. */
    std::uint64_t writeBytes() const { return writeBytes_; }

    /** Clear the access counters. */
    void
    reset()
    {
        readBytes_ = 0;
        writeBytes_ = 0;
    }

  private:
    std::uint64_t bytesPerCycle_;
    std::uint64_t readBytes_ = 0;
    std::uint64_t writeBytes_ = 0;
};

} // namespace panacea

#endif // PANACEA_SIM_DRAM_H
