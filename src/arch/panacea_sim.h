/**
 * @file
 * The Panacea accelerator cycle simulator (paper §III-D, Fig. 11-12):
 * output-stationary tiled dataflow over 16 PEAs with DWO/SWO operator
 * banks, compensators, S-ACCs, a PPU and double-tile processing, with a
 * bandwidth-limited DRAM channel and WMEM/AMEM/OMEM partitions.
 *
 * The simulator consumes compression masks only (see workload.h);
 * functional correctness of the skipped arithmetic is established by the
 * exactness-tested core engines.
 */

#ifndef PANACEA_ARCH_PANACEA_SIM_H
#define PANACEA_ARCH_PANACEA_SIM_H

#include <span>
#include <string>

#include "arch/config.h"
#include "arch/memory_manager.h"
#include "arch/workload.h"
#include "sim/energy_model.h"
#include "sim/perf_stats.h"

namespace panacea {

/**
 * Cycle-level performance simulator for Panacea.
 */
class PanaceaSimulator
{
  public:
    /** @param cfg hardware configuration  @param energy energy model. */
    explicit PanaceaSimulator(PanaceaConfig cfg = PanaceaConfig{},
                              EnergyModel energy = EnergyModel{});

    /** Simulate one GEMM workload. */
    PerfResult run(const GemmWorkload &wl) const;

    /** Simulate a sequence of layers and merge the results. */
    PerfResult runAll(std::span<const GemmWorkload> layers,
                      const std::string &workload_name) const;

    /** @return the hardware configuration. */
    const PanaceaConfig &config() const { return cfg_; }

    /** @return the traffic plan the memory manager would produce. */
    TrafficPlan planTraffic(const GemmWorkload &wl) const;

    /** @return design name used in reports. */
    std::string name() const;

  private:
    PanaceaConfig cfg_;
    EnergyModel energy_;
};

} // namespace panacea

#endif // PANACEA_ARCH_PANACEA_SIM_H
