/**
 * @file
 * The per-PEA workload scheduler (paper Fig. 11): allocates outer
 * products of uncompressed slice-vector pairs onto the dynamic (DWO) and
 * static (SWO) operator banks and determines the tile makespan.
 *
 * Scheduling constraints:
 *  - dynamic outer products (any product touching an HO slice) run only
 *    on DWOs;
 *  - static outer products (W_LO x x_LO) of the primary tile run on
 *    SWOs;
 *  - under DTP, the second tile's static products may run on either bank
 *    (the paper: "outer products of W_LO x_LO for the second weight
 *    sub-tile can be allocated to DWOs").
 *
 * The closed-form makespan equals the greedy list-scheduling result up
 * to integer rounding; both are implemented and cross-checked in tests.
 */

#ifndef PANACEA_ARCH_SCHEDULER_H
#define PANACEA_ARCH_SCHEDULER_H

#include <cstdint>

namespace panacea {

/** Outer-product workload of one PEA for one tile (or tile pair). */
struct PeaTileWork
{
    std::uint64_t dynOps = 0;    ///< DWO-only outer products
    std::uint64_t statOps = 0;   ///< primary tile's static products
    std::uint64_t statOps2 = 0;  ///< DTP second tile's static products
};

/**
 * Workload scheduler for one PEA.
 */
class PeaScheduler
{
  public:
    /** @param dwos number of DWOs  @param swos number of SWOs. */
    PeaScheduler(int dwos, int swos);

    /**
     * Closed-form makespan (cycles) of a tile's work.
     * Without DTP, statOps2 must be zero.
     */
    std::uint64_t makespan(const PeaTileWork &work, bool dtp) const;

    /**
     * Discrete greedy list-scheduling simulation, cycle by cycle.
     * Used to validate the closed form; O(cycles).
     */
    std::uint64_t simulateGreedy(const PeaTileWork &work, bool dtp) const;

  private:
    int dwos_;
    int swos_;
};

} // namespace panacea

#endif // PANACEA_ARCH_SCHEDULER_H
