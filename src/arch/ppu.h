/**
 * @file
 * Post-Processing Unit (PPU, paper Fig. 11): adds the bit-slice and
 * compensator outputs, applies a piecewise-linear non-linearity,
 * re-quantizes, re-slices, compresses HO slices and RLE-encodes the
 * result for the next layer.
 *
 * The functional pieces here (PWL GELU/ReLU and integer requantization)
 * are shared between the hardware-fidelity tests and the model pipeline;
 * the cost model feeds the cycle simulator's energy counters.
 */

#ifndef PANACEA_ARCH_PPU_H
#define PANACEA_ARCH_PPU_H

#include <cstdint>

#include "quant/quant_params.h"
#include "util/matrix.h"

namespace panacea {

/** Non-linearities the PPU supports. */
enum class Nonlinearity { None, Relu, Gelu };

/** @return printable name. */
const char *toString(Nonlinearity f);

/** Exact GELU (tanh approximation, the common DNN form). */
float geluExact(float x);

/**
 * Piecewise-linear GELU over 32 segments in [-4, 4] (identity above,
 * zero below), as the PPU's low-cost approximation. Max absolute error
 * below 8e-3 in the active range.
 */
float pwlGelu(float x);

/** Apply a non-linearity element-wise (PWL hardware form). */
MatrixF applyNonlinearityPwl(const MatrixF &input, Nonlinearity f);

/** Apply the exact non-linearity element-wise (reference). */
MatrixF applyNonlinearityExact(const MatrixF &input, Nonlinearity f);

/**
 * Integer requantization: map an accumulator on grid acc_scale to codes
 * of the next layer's quantizer: clip(round(acc * acc_scale / s') + zp).
 */
MatrixI32 requantize(const MatrixI64 &acc, double acc_scale,
                     const QuantParams &out);

/** PPU operation count for one output tile (energy proxy). */
std::uint64_t ppuOpsFor(std::uint64_t elements);

} // namespace panacea

#endif // PANACEA_ARCH_PPU_H
