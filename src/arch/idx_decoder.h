/**
 * @file
 * RLE index decoder (IDXD, paper Fig. 11): recovers the absolute vector
 * indices of uncompressed slice-vectors from the RLE skip indices so the
 * workload scheduler can match weight and activation vectors with equal
 * reduction index k.
 */

#ifndef PANACEA_ARCH_IDX_DECODER_H
#define PANACEA_ARCH_IDX_DECODER_H

#include <cstdint>
#include <vector>

#include "slicing/rle.h"

namespace panacea {

/**
 * Hardware-faithful index recovery: accumulates skip counts exactly as
 * the IDXD's adder chain does.
 */
class IndexDecoder
{
  public:
    /**
     * Decode a stream's skip indices into absolute vector indices.
     * Mirrors RleStream bookkeeping but derives positions only from the
     * skip fields (what the hardware actually stores).
     */
    static std::vector<std::uint32_t>
    decodeIndices(const RleStream &stream)
    {
        std::vector<std::uint32_t> indices;
        indices.reserve(stream.storedCount());
        std::uint32_t cursor = 0;
        for (const RleEntry &entry : stream.entries()) {
            cursor += entry.skip;
            indices.push_back(cursor);
            ++cursor;
        }
        return indices;
    }

    /**
     * Intersect two decoded index lists (weight and activation streams):
     * the scheduler issues one HO x HO outer product per shared k.
     * Both lists are strictly increasing.
     */
    static std::vector<std::uint32_t>
    matchIndices(const std::vector<std::uint32_t> &a,
                 const std::vector<std::uint32_t> &b)
    {
        std::vector<std::uint32_t> matched;
        std::size_t i = 0;
        std::size_t j = 0;
        while (i < a.size() && j < b.size()) {
            if (a[i] == b[j]) {
                matched.push_back(a[i]);
                ++i;
                ++j;
            } else if (a[i] < b[j]) {
                ++i;
            } else {
                ++j;
            }
        }
        return matched;
    }
};

} // namespace panacea

#endif // PANACEA_ARCH_IDX_DECODER_H
