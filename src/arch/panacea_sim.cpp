#include "arch/panacea_sim.h"

#include <algorithm>

#include "arch/pea.h"
#include "arch/ppu.h"
#include "arch/scheduler.h"
#include "sim/dram.h"
#include "util/logging.h"

namespace panacea {

PanaceaSimulator::PanaceaSimulator(PanaceaConfig cfg, EnergyModel energy)
    : cfg_(cfg), energy_(energy)
{
    cfg_.validate();
}

std::string
PanaceaSimulator::name() const
{
    std::string n = "Panacea(" + std::to_string(cfg_.dwosPerPea) + "D" +
                    std::to_string(cfg_.swosPerPea) + "S";
    if (cfg_.enableDtp)
        n += "+DTP";
    n += ")";
    return n;
}

TrafficPlan
PanaceaSimulator::planTraffic(const GemmWorkload &wl) const
{
    return MemoryManager(cfg_).plan(wl);
}

PerfResult
PanaceaSimulator::run(const GemmWorkload &wl) const
{
    panic_if(wl.m % cfg_.v != 0 || wl.n % cfg_.v != 0,
             "workload M/N must be divisible by v");

    MemoryManager mem(cfg_);
    TrafficPlan plan = mem.plan(wl);
    XccTable xcc = XccTable::build(wl, cfg_.tileN, cfg_.v);
    PeaScheduler scheduler(cfg_.dwosPerPea, cfg_.swosPerPea);

    const std::size_t groups_per_tile =
        static_cast<std::size_t>(cfg_.tileM / cfg_.v);
    const std::size_t total_groups =
        wl.m / static_cast<std::size_t>(cfg_.v);
    const std::size_t m_tiles =
        (total_groups + groups_per_tile - 1) / groups_per_tile;
    const bool compensate = cfg_.actSkip == ActSkipMode::RValued;

    std::uint64_t compute_cycles = 0;
    PeaWork total_work;

    const std::size_t tile_stride = plan.dtpEnabled ? 2 : 1;
    for (std::size_t t0 = 0; t0 < m_tiles; t0 += tile_stride) {
        const bool has_second = plan.dtpEnabled && t0 + 1 < m_tiles;
        for (std::size_t nt = 0; nt < xcc.tiles(); ++nt) {
            std::uint64_t tile_cycles = 0;
            for (int p = 0; p < cfg_.numPeas; ++p) {
                PeaTileWork sched_work;
                std::size_t g_a = t0 * groups_per_tile +
                                  static_cast<std::size_t>(p);
                if (g_a < total_groups) {
                    PeaWork a = countPeaWork(wl, xcc, g_a, nt, cfg_.v,
                                             compensate);
                    sched_work.dynOps = a.dynExec;
                    sched_work.statOps = a.statExec;
                    total_work += a;
                }
                if (has_second) {
                    std::size_t g_b = (t0 + 1) * groups_per_tile +
                                      static_cast<std::size_t>(p);
                    if (g_b < total_groups) {
                        PeaWork b = countPeaWork(wl, xcc, g_b, nt, cfg_.v,
                                                 compensate);
                        sched_work.dynOps += b.dynExec;
                        sched_work.statOps2 = b.statExec;
                        total_work += b;
                    }
                }
                tile_cycles = std::max(
                    tile_cycles,
                    scheduler.makespan(sched_work, plan.dtpEnabled));
            }
            compute_cycles += tile_cycles;
        }
    }

    // --- Assemble counters ---
    OpCounters c;
    const std::uint64_t vv = static_cast<std::uint64_t>(cfg_.v) *
                             static_cast<std::uint64_t>(cfg_.v);
    const std::uint64_t executed = total_work.dynExec + total_work.statExec;
    c.mults4b = executed * vv + total_work.compMults;
    c.adds = executed * vv +
             (cfg_.useEq6 ? total_work.compAddsEq6 : total_work.compAddsEq5);
    c.shifts = executed;  // one S-ACC shift per outer product result
    c.ppuOps = ppuOpsFor(static_cast<std::uint64_t>(wl.m) * wl.n);
    c.sramReadBytes = plan.sramReadBytes;
    c.sramWriteBytes = plan.sramWriteBytes;
    c.dramReadBytes = plan.dramReadBytes;
    c.dramWriteBytes = plan.dramWriteBytes;
    if (!cfg_.useEq6) {
        // Eq. (5) compensation re-loads the weight slices of compressed
        // columns: count the extra external traffic.
        c.dramReadBytes += total_work.compAddsEq5 / 2;  // nibbles -> bytes
    }
    c.usefulMacs = static_cast<std::uint64_t>(wl.m) * wl.k * wl.n;

    DramModel dram(cfg_.dramBytesPerCycle);
    const std::uint64_t dram_cycles =
        dram.cyclesFor(c.dramReadBytes + c.dramWriteBytes);
    // Double-buffered DMA overlaps with compute; a small prologue covers
    // the first tile's fill.
    c.cycles = std::max(compute_cycles, dram_cycles) + 256;

    c.scale(wl.repeat);

    PerfResult result;
    result.accelerator = name();
    result.workload = wl.name;
    result.counters = c;
    result.energy = energy_.compute(c);
    result.clockGhz = cfg_.clockGhz;
    result.multipliers = cfg_.totalMultipliers();
    return result;
}

PerfResult
PanaceaSimulator::runAll(std::span<const GemmWorkload> layers,
                         const std::string &workload_name) const
{
    panic_if(layers.empty(), "runAll on empty layer list");
    PerfResult total;
    total.accelerator = name();
    total.workload = workload_name;
    total.clockGhz = cfg_.clockGhz;
    total.multipliers = cfg_.totalMultipliers();
    for (const GemmWorkload &wl : layers)
        total += run(wl);
    return total;
}

} // namespace panacea
