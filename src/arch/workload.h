/**
 * @file
 * The GEMM workload descriptor consumed by the cycle simulators.
 *
 * The cycle layer never touches slice values: all scheduling and traffic
 * decisions depend only on the compression masks (which HO vectors are
 * elided) and the operand geometry. Functional correctness is the
 * province of the exactness-tested core engines; the descriptors here
 * are produced from the very same prepared operands.
 */

#ifndef PANACEA_ARCH_WORKLOAD_H
#define PANACEA_ARCH_WORKLOAD_H

#include <cstdint>
#include <string>

#include "core/aqs_gemm.h"
#include "util/matrix.h"
#include "util/random.h"

namespace panacea {

/** One GEMM's worth of work for an accelerator simulator. */
struct GemmWorkload
{
    std::string name;       ///< layer label (for reports)
    std::size_t m = 0;      ///< output rows
    std::size_t k = 0;      ///< reduction depth
    std::size_t n = 0;      ///< output columns
    int wLevels = 2;        ///< weight slice planes (n+1)
    int xLevels = 2;        ///< activation slice planes (k+1)
    int weightBits = 7;     ///< source weight code width
    int actBits = 8;        ///< source activation code width
    bool weightHoSkippable = true; ///< false when n=0 (single LO slice)
    MatrixU8 wMask;         ///< (M/v) x K compressed weight HO vectors
    MatrixU8 xMask;         ///< K x (N/v) compressed activation HO vectors
    std::uint64_t repeat = 1; ///< identical layer multiplicity

    /** @return measured weight HO vector sparsity. */
    double rhoW() const;
    /** @return measured activation HO vector sparsity. */
    double rhoX() const;
    /** @return dense-equivalent MAC count (m*k*n*repeat). */
    std::uint64_t usefulMacs() const;

    /**
     * Build from prepared AQS-GEMM operands (the exactness-tested path).
     */
    static GemmWorkload fromOperands(std::string name,
                                     const WeightOperand &w,
                                     const ActivationOperand &x, int v,
                                     std::uint64_t repeat = 1);

    /**
     * Synthesize a workload with iid Bernoulli compression masks of the
     * given vector sparsities (for the Fig. 13 design sweeps).
     */
    static GemmWorkload synthetic(std::string name, std::size_t m,
                                  std::size_t k, std::size_t n,
                                  double rho_w, double rho_x, int v,
                                  Rng &rng, std::uint64_t repeat = 1);
};

} // namespace panacea

#endif // PANACEA_ARCH_WORKLOAD_H
