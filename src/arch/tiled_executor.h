/**
 * @file
 * Functional tiled executor: computes the AQS-GEMM by walking the exact
 * output-stationary tile traversal of the cycle simulator (paper
 * Fig. 12) - m-supers (with DTP pairing), n-tiles, PEA row bands, the
 * K reduction, and the hardware Compensator units for the Eq. (6) term.
 *
 * Its result must equal the reference engine (aqsGemm) bit-for-bit:
 * this is the "dataflow conservation" invariant (DESIGN.md §5.6) - every
 * scheduled outer product is executed exactly once and accumulation
 * order never changes the integer result.
 */

#ifndef PANACEA_ARCH_TILED_EXECUTOR_H
#define PANACEA_ARCH_TILED_EXECUTOR_H

#include "arch/config.h"
#include "core/aqs_gemm.h"
#include "util/matrix.h"

namespace panacea {

/** Per-run statistics of the tiled traversal. */
struct TiledExecutionStats
{
    std::uint64_t tilesVisited = 0;
    std::uint64_t bandsProcessed = 0;
    std::uint64_t outerProducts = 0;     ///< executed (matches AqsStats)
    std::uint64_t compensations = 0;     ///< CS finish operations
    bool dtpUsed = false;
};

/**
 * Execute the AQS-GEMM through the Panacea tile traversal.
 *
 * @param w    prepared weight operand (SBR planes + masks)
 * @param x    prepared activation operand (planes + masks + r)
 * @param cfg  hardware configuration (tiling + DTP)
 * @return the bit-exact integer accumulator W * x.
 */
MatrixI64 executeTiled(const WeightOperand &w, const ActivationOperand &x,
                       const PanaceaConfig &cfg,
                       TiledExecutionStats *stats = nullptr);

} // namespace panacea

#endif // PANACEA_ARCH_TILED_EXECUTOR_H
