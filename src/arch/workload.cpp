#include "arch/workload.h"

#include "slicing/sparsity.h"
#include "util/logging.h"

namespace panacea {

double
GemmWorkload::rhoW() const
{
    if (!weightHoSkippable)
        return 0.0;
    return maskDensityOfOnes(wMask);
}

double
GemmWorkload::rhoX() const
{
    return maskDensityOfOnes(xMask);
}

std::uint64_t
GemmWorkload::usefulMacs() const
{
    return static_cast<std::uint64_t>(m) * k * n * repeat;
}

GemmWorkload
GemmWorkload::fromOperands(std::string name, const WeightOperand &w,
                           const ActivationOperand &x, int v,
                           std::uint64_t repeat)
{
    GemmWorkload wl;
    wl.name = std::move(name);
    wl.m = w.sliced.rows();
    wl.k = w.sliced.cols();
    wl.n = x.sliced.cols();
    panic_if(x.sliced.rows() != wl.k, "operand shape mismatch");
    wl.wLevels = static_cast<int>(w.sliced.levels());
    wl.xLevels = static_cast<int>(x.sliced.levels());
    wl.weightBits = w.sliced.sourceBits;
    wl.actBits = x.sliced.sourceBits;
    // With a single 4-bit weight slice (n=0) the paper treats the slice
    // as a dense LO slice: there is no weight HO plane to skip.
    wl.weightHoSkippable = wl.wLevels >= 2;
    wl.wMask = w.hoMask;
    wl.xMask = x.hoMask;
    wl.repeat = repeat;
    (void)v;
    return wl;
}

GemmWorkload
GemmWorkload::synthetic(std::string name, std::size_t m, std::size_t k,
                        std::size_t n, double rho_w, double rho_x, int v,
                        Rng &rng, std::uint64_t repeat)
{
    panic_if(m % v != 0 || n % v != 0, "synthetic workload M/N must be "
             "divisible by v");
    panic_if(rho_w < 0.0 || rho_w > 1.0 || rho_x < 0.0 || rho_x > 1.0,
             "sparsities must lie in [0,1]");

    GemmWorkload wl;
    wl.name = std::move(name);
    wl.m = m;
    wl.k = k;
    wl.n = n;
    wl.repeat = repeat;
    wl.wMask = MatrixU8(m / v, k);
    for (auto &cell : wl.wMask.data())
        cell = rng.bernoulli(rho_w) ? 1 : 0;
    wl.xMask = MatrixU8(k, n / v);
    for (auto &cell : wl.xMask.data())
        cell = rng.bernoulli(rho_x) ? 1 : 0;
    return wl;
}

} // namespace panacea
