#include "arch/scheduler.h"

#include <algorithm>

#include "util/logging.h"

namespace panacea {

namespace {

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? 0 : (a + b - 1) / b;
}

} // namespace

PeaScheduler::PeaScheduler(int dwos, int swos)
    : dwos_(dwos), swos_(swos)
{
    panic_if(dwos < 0 || swos < 0, "negative operator counts");
    panic_if(dwos + swos == 0, "PEA needs at least one operator");
}

std::uint64_t
PeaScheduler::makespan(const PeaTileWork &work, bool dtp) const
{
    panic_if(!dtp && work.statOps2 != 0,
             "second-tile static work without DTP");

    const auto d = static_cast<std::uint64_t>(dwos_);
    const auto s = static_cast<std::uint64_t>(swos_);

    if (work.dynOps > 0 && d == 0)
        panic("dynamic work with zero DWOs");

    if (!dtp) {
        std::uint64_t dyn_cycles = d ? ceilDiv(work.dynOps, d) : 0;
        std::uint64_t stat_cycles = s ? ceilDiv(work.statOps, s)
                                      : ceilDiv(work.statOps, d);
        return std::max(dyn_cycles, stat_cycles);
    }

    // DTP: DWOs serve {dyn, stat2}; SWOs serve {stat1, stat2}. The fluid
    // makespan is the max of three lower bounds, each achievable by the
    // greedy schedule up to one cycle of integer rounding.
    std::uint64_t lb_dyn = d ? ceilDiv(work.dynOps, d) : 0;
    std::uint64_t lb_stat1 = s ? ceilDiv(work.statOps, s) : 0;
    std::uint64_t total = work.dynOps + work.statOps + work.statOps2;
    std::uint64_t lb_all = ceilDiv(total, d + s);
    // When SWOs are saturated by stat1, the overflow of stat2 lands on
    // the DWOs together with dyn.
    std::uint64_t lb_dwo_side = 0;
    if (d) {
        // Pairwise bound: dyn + max(0, stat2 - spare SWO slots at
        // horizon T) <= d*T. Solved by iterating the candidate horizon
        // (converges in at most a few steps).
        std::uint64_t t = std::max({lb_dyn, lb_stat1, lb_all});
        for (int iter = 0; iter < 4; ++iter) {
            std::uint64_t swo_spare =
                s * t > work.statOps ? s * t - work.statOps : 0;
            std::uint64_t stat2_on_dwo =
                work.statOps2 > swo_spare ? work.statOps2 - swo_spare : 0;
            std::uint64_t need = ceilDiv(work.dynOps + stat2_on_dwo, d);
            if (need <= t)
                break;
            t = need;
        }
        lb_dwo_side = t;
    }
    return std::max({lb_dyn, lb_stat1, lb_all, lb_dwo_side});
}

std::uint64_t
PeaScheduler::simulateGreedy(const PeaTileWork &work, bool dtp) const
{
    panic_if(!dtp && work.statOps2 != 0,
             "second-tile static work without DTP");

    std::uint64_t dyn = work.dynOps;
    std::uint64_t stat1 = work.statOps;
    std::uint64_t stat2 = work.statOps2;
    std::uint64_t cycles = 0;

    while (dyn + stat1 + stat2 > 0) {
        ++cycles;
        // DWOs: dynamic first, then (DTP) second-tile static.
        std::uint64_t d_slots = static_cast<std::uint64_t>(dwos_);
        std::uint64_t take = std::min(d_slots, dyn);
        dyn -= take;
        d_slots -= take;
        if (dtp) {
            take = std::min(d_slots, stat2);
            stat2 -= take;
        }
        // SWOs: primary static first, then second-tile static.
        std::uint64_t s_slots = static_cast<std::uint64_t>(swos_);
        take = std::min(s_slots, stat1);
        stat1 -= take;
        s_slots -= take;
        take = std::min(s_slots, stat2);
        stat2 -= take;

        panic_if(cycles > (work.dynOps + work.statOps + work.statOps2 + 2),
                 "greedy scheduler failed to make progress");
    }
    return cycles;
}

} // namespace panacea
