/**
 * @file
 * Shift-and-accumulate unit (S-ACC, paper Fig. 11): combines the partial
 * sums of the four bit-slice GEMMs by shifting each outer-product result
 * according to its slice levels (and the layer's DBS type) before
 * accumulation. DBS is "simply implemented by properly shifting the
 * outputs of AQS-GEMM" - this unit is that shifter.
 */

#ifndef PANACEA_ARCH_S_ACC_H
#define PANACEA_ARCH_S_ACC_H

#include <cstdint>

#include "util/logging.h"

namespace panacea {

/**
 * A single shift-and-accumulate register.
 */
class ShiftAccumulator
{
  public:
    /** Accumulate a raw 4b x 4b outer-product partial sum. */
    void
    accumulate(std::int64_t partial, int shift)
    {
        panic_if(shift < 0 || shift > 16, "S-ACC shift ", shift,
                 " out of range");
        value_ += partial << shift;
        ++shiftsPerformed_;
    }

    /** @return the accumulated value. */
    std::int64_t value() const { return value_; }

    /** @return number of shift operations performed (energy proxy). */
    std::uint64_t shiftsPerformed() const { return shiftsPerformed_; }

    /** Clear the accumulator for the next output tile. */
    void
    reset()
    {
        value_ = 0;
        shiftsPerformed_ = 0;
    }

  private:
    std::int64_t value_ = 0;
    std::uint64_t shiftsPerformed_ = 0;
};

/**
 * @return the S-ACC shift amount for a product of a weight slice at
 * shift w_shift and an activation slice at shift x_shift (the DBS type
 * is already baked into the activation plane shifts).
 */
constexpr int
sAccShift(int w_shift, int x_shift)
{
    return w_shift + x_shift;
}

} // namespace panacea

#endif // PANACEA_ARCH_S_ACC_H
