#include "arch/tiled_executor.h"

#include <algorithm>
#include <vector>

#include "arch/compensator.h"
#include "arch/memory_manager.h"
#include "arch/s_acc.h"
#include "util/logging.h"
#include "util/parallel_for.h"

namespace panacea {

namespace {

/**
 * Process one PEA band (v rows starting at band*v) against one n-tile
 * column range over the full K reduction, exactly as the PEA's DWOs,
 * SWOs and CS would.
 */
void
processBand(const WeightOperand &w, const ActivationOperand &x,
            std::size_t band, std::size_t ng_begin, std::size_t ng_end,
            int v, ActSkipMode skip_mode,
            std::span<const std::int64_t> b_prime, MatrixI64 &acc,
            TiledExecutionStats &st)
{
    const std::size_t kk = w.sliced.cols();
    const std::size_t w_levels = w.sliced.levels();
    const std::size_t x_levels = x.sliced.levels();
    const bool w_skippable = w_levels >= 2;
    const bool r_skip = skip_mode == ActSkipMode::RValued;
    const bool x_skippable = skip_mode != ActSkipMode::None;
    const int x_ho_shift = x.sliced.hoPlane().shift;

    for (std::size_t ng = ng_begin; ng < ng_end; ++ng) {
        // One compensator per output block, fed by the weight columns
        // loaded for the uncompressed activation vectors.
        Compensator cs(v, x_ho_shift);

        for (std::size_t k = 0; k < kk; ++k) {
            const bool w_comp =
                w_skippable && w.hoMask(band, k) != 0;
            const bool x_comp = x_skippable && x.hoMask(k, ng) != 0;

            if (r_skip && !x_comp) {
                for (const SlicePlane &plane : w.sliced.planes) {
                    Slice column[16];
                    panic_if(v > 16, "band height exceeds CS width");
                    for (int i = 0; i < v; ++i)
                        column[i] = plane.data(band * v +
                                               static_cast<std::size_t>(i),
                                               k);
                    cs.absorbColumn(
                        std::span<const Slice>(column,
                                               static_cast<std::size_t>(v)),
                        plane.shift);
                }
            }

            for (std::size_t wl = 0; wl < w_levels; ++wl) {
                const bool w_is_ho =
                    w_levels >= 2 && wl == w_levels - 1;
                if (w_is_ho && w_comp)
                    continue;
                const SlicePlane &wp = w.sliced.planes[wl];
                for (std::size_t xl = 0; xl < x_levels; ++xl) {
                    const bool x_is_ho = xl == x_levels - 1;
                    if (x_is_ho && x_comp)
                        continue;
                    const SlicePlane &xp = x.sliced.planes[xl];
                    const int shift = sAccShift(wp.shift, xp.shift);
                    ++st.outerProducts;
                    for (int i = 0; i < v; ++i) {
                        const std::int64_t ws =
                            wp.data(band * v + static_cast<std::size_t>(i),
                                    k);
                        for (int j = 0; j < v; ++j) {
                            const std::int64_t xs = xp.data(
                                k,
                                ng * v + static_cast<std::size_t>(j));
                            acc(band * v + static_cast<std::size_t>(i),
                                ng * v + static_cast<std::size_t>(j)) +=
                                (ws * xs) << shift;
                        }
                    }
                }
            }
        }

        if (r_skip) {
            std::vector<std::int64_t> band_b_prime(
                b_prime.begin() + static_cast<std::ptrdiff_t>(band * v),
                b_prime.begin() +
                    static_cast<std::ptrdiff_t>((band + 1) * v));
            std::vector<std::int64_t> comp =
                cs.finish(band_b_prime, x.r);
            ++st.compensations;
            for (int i = 0; i < v; ++i)
                for (int j = 0; j < v; ++j)
                    acc(band * v + static_cast<std::size_t>(i),
                        ng * v + static_cast<std::size_t>(j)) += comp[i];
        }
        ++st.bandsProcessed;
    }
}

} // namespace

MatrixI64
executeTiled(const WeightOperand &w, const ActivationOperand &x,
             const PanaceaConfig &cfg, TiledExecutionStats *stats)
{
    cfg.validate();
    const std::size_t m = w.sliced.rows();
    const std::size_t kk = w.sliced.cols();
    const std::size_t n = x.sliced.cols();
    panic_if(x.sliced.rows() != kk, "tiled executor shape mismatch");
    const int v = cfg.v;
    panic_if(m % v != 0 || n % v != 0,
             "M and N must be divisible by v");

    TiledExecutionStats st;
    const bool r_skip = cfg.actSkip == ActSkipMode::RValued;

    // Offline b' = r * 2^shift * row sums of the total weight codes.
    std::vector<std::int64_t> b_prime(m, 0);
    if (r_skip) {
        const int x_ho_shift = x.sliced.hoPlane().shift;
        for (std::size_t row = 0; row < m; ++row) {
            std::int64_t sum = 0;
            for (std::size_t k = 0; k < kk; ++k)
                sum += w.totalCodes(row, k);
            b_prime[row] = sum * (static_cast<std::int64_t>(x.r)
                                  << x_ho_shift);
        }
    }

    // Tile traversal of Fig. 12: m-supers (DTP pairs), n-tiles, bands.
    GemmWorkload wl;
    wl.m = m;
    wl.k = kk;
    wl.n = n;
    wl.wLevels = static_cast<int>(w.sliced.levels());
    wl.xLevels = static_cast<int>(x.sliced.levels());
    wl.weightHoSkippable = w.sliced.levels() >= 2;
    wl.wMask = w.hoMask;
    wl.xMask = x.hoMask;
    TrafficPlan plan = MemoryManager(cfg).plan(wl);
    st.dtpUsed = plan.dtpEnabled;

    const std::size_t bands_per_tile =
        static_cast<std::size_t>(cfg.tileM / v);
    const std::size_t total_bands = m / static_cast<std::size_t>(v);
    const std::size_t m_tiles =
        (total_bands + bands_per_tile - 1) / bands_per_tile;
    const std::size_t groups_per_ntile =
        static_cast<std::size_t>(cfg.tileN / v);
    const std::size_t n_groups = n / static_cast<std::size_t>(v);
    const std::size_t n_tiles =
        (n_groups + groups_per_ntile - 1) / groups_per_ntile;
    const std::size_t tile_stride = plan.dtpEnabled ? 2 : 1;

    MatrixI64 acc(m, n);
    std::vector<std::size_t> bands;
    bands.reserve(tile_stride * bands_per_tile);
    std::vector<TiledExecutionStats> partial;
    for (std::size_t t0 = 0; t0 < m_tiles; t0 += tile_stride) {
        const std::size_t tiles_now =
            std::min<std::size_t>(tile_stride, m_tiles - t0);
        for (std::size_t nt = 0; nt < n_tiles; ++nt) {
            const std::size_t g0 = nt * groups_per_ntile;
            const std::size_t g1 =
                std::min(n_groups, g0 + groups_per_ntile);
            bands.clear();
            for (std::size_t dt = 0; dt < tiles_now; ++dt) {
                for (std::size_t p = 0; p < bands_per_tile; ++p) {
                    const std::size_t band =
                        (t0 + dt) * bands_per_tile + p;
                    if (band < total_bands)
                        bands.push_back(band);
                }
            }
            // The PEAs of one tile pass run concurrently: bands own
            // disjoint accumulator rows, and the per-band counters are
            // exact integer sums, so the result and the statistics are
            // bit-identical for any thread count.
            const int chunks = parallelChunkCount(bands.size());
            partial.assign(static_cast<std::size_t>(chunks),
                           TiledExecutionStats{});
            parallelFor(0, bands.size(),
                        [&](std::size_t b, std::size_t e, int c) {
                            for (std::size_t idx = b; idx < e; ++idx)
                                processBand(w, x, bands[idx], g0, g1, v,
                                            cfg.actSkip, b_prime, acc,
                                            partial[static_cast<
                                                std::size_t>(c)]);
                        });
            for (const TiledExecutionStats &part : partial) {
                st.bandsProcessed += part.bandsProcessed;
                st.outerProducts += part.outerProducts;
                st.compensations += part.compensations;
            }
            ++st.tilesVisited;
        }
    }

    if (stats)
        *stats = st;
    return acc;
}

} // namespace panacea
