/**
 * @file
 * Static configuration of the Panacea accelerator (paper §III-D,
 * Fig. 11/12). Defaults follow the paper: P=16 PEAs, 4 DWOs + 8 SWOs per
 * PEA (16 4bx4b multipliers each, 3072 total), v=4, TM=64, TK=32, TN=64,
 * 192 KB of on-chip SRAM and a 256-bit/cycle DRAM channel.
 */

#ifndef PANACEA_ARCH_CONFIG_H
#define PANACEA_ARCH_CONFIG_H

#include <cstdint>

#include "core/aqs_gemm.h"
#include "util/logging.h"

namespace panacea {

/** Panacea hardware configuration. */
struct PanaceaConfig
{
    int numPeas = 16;          ///< P
    int dwosPerPea = 4;        ///< dynamic workload operators per PEA
    int swosPerPea = 8;        ///< static workload operators per PEA
    int v = 4;                 ///< slice-vector length
    int tileM = 64;            ///< TM = P * v
    int tileK = 32;            ///< TK
    int tileN = 64;            ///< TN
    bool enableDtp = true;     ///< double-tile processing
    int rleIndexBits = 4;

    std::uint64_t wmemBytes = 160 * 1024;  ///< weight memory
    std::uint64_t amemBytes = 16 * 1024;   ///< activation memory
    std::uint64_t omemBytes = 16 * 1024;   ///< output memory
    std::uint64_t dramBytesPerCycle = 32;  ///< 256-bit channel
    double clockGhz = 0.5;

    ActSkipMode actSkip = ActSkipMode::RValued;
    bool useEq6 = true;        ///< Eq. (6) compensation (vs Eq. (5))

    /** @return multipliers per OPC (v x v). */
    int opcMultipliers() const { return v * v; }

    /** @return total 4b x 4b multipliers in the design. */
    int
    totalMultipliers() const
    {
        return numPeas * (dwosPerPea + swosPerPea) * opcMultipliers();
    }

    /** @return total on-chip SRAM in bytes. */
    std::uint64_t
    totalSramBytes() const
    {
        return wmemBytes + amemBytes + omemBytes;
    }

    /** Validate structural invariants; panics on violation. */
    void
    validate() const
    {
        panic_if(numPeas <= 0 || dwosPerPea < 0 || swosPerPea <= 0,
                 "invalid operator configuration");
        panic_if(tileM != numPeas * v,
                 "TM (", tileM, ") must equal P*v (", numPeas * v, ")");
        panic_if(tileK % v != 0 || tileN % v != 0,
                 "TK and TN must be multiples of v");
        panic_if(dramBytesPerCycle == 0, "zero DRAM bandwidth");
    }
};

} // namespace panacea

#endif // PANACEA_ARCH_CONFIG_H
