/**
 * @file
 * Memory manager (paper Fig. 11): plans operand residency in WMEM/AMEM/
 * OMEM, derives the external (DRAM) and on-chip (SRAM) traffic of the
 * tiled output-stationary dataflow of Fig. 12, and evaluates the DTP
 * enable condition ("WMEM can store the slices of the 2TM x K weight
 * tile at once").
 */

#ifndef PANACEA_ARCH_MEMORY_MANAGER_H
#define PANACEA_ARCH_MEMORY_MANAGER_H

#include <cstdint>
#include <vector>

#include "arch/config.h"
#include "arch/workload.h"

namespace panacea {

/** Traffic plan for one workload on Panacea. */
struct TrafficPlan
{
    bool dtpEnabled = false;
    bool weightsResident = false; ///< TM x K tile fits WMEM
    bool actsResident = false;    ///< whole activation fits AMEM
    std::uint64_t mSupers = 0;    ///< outer-loop weight passes
    std::uint64_t nTiles = 0;
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;
    std::uint64_t sramReadBytes = 0;
    std::uint64_t sramWriteBytes = 0;
    std::uint64_t wBytesCompressed = 0; ///< whole compressed weight
    std::uint64_t xBytesCompressed = 0; ///< whole compressed activation
    std::uint64_t outBytes = 0;
};

/**
 * Plans traffic for the Panacea dataflow.
 */
class MemoryManager
{
  public:
    explicit MemoryManager(const PanaceaConfig &cfg) : cfg_(cfg) {}

    /** Compute the full traffic plan for a workload. */
    TrafficPlan plan(const GemmWorkload &wl) const;

    /**
     * Compressed bits of the weight rows [row_group_begin,
     * row_group_end) across all K: stored HO vectors (4v + index bits
     * each) plus dense LO planes.
     */
    std::uint64_t weightBits(const GemmWorkload &wl,
                             std::size_t row_group_begin,
                             std::size_t row_group_end) const;

    /** Compressed bits of the whole activation operand. */
    std::uint64_t activationBits(const GemmWorkload &wl) const;

  private:
    PanaceaConfig cfg_;
};

} // namespace panacea

#endif // PANACEA_ARCH_MEMORY_MANAGER_H
