#include "arch/pea.h"

#include "util/logging.h"

namespace panacea {

XccTable
XccTable::build(const GemmWorkload &wl, int tile_n, int v)
{
    panic_if(tile_n % v != 0, "tile N must be a multiple of v");
    const std::size_t n_groups = wl.n / static_cast<std::size_t>(v);
    const std::size_t groups_per_tile =
        static_cast<std::size_t>(tile_n / v);
    const std::size_t tiles =
        (n_groups + groups_per_tile - 1) / groups_per_tile;

    XccTable table;
    table.counts_ = Matrix<std::uint32_t>(wl.k, tiles);
    table.groups_.resize(tiles);
    for (std::size_t t = 0; t < tiles; ++t) {
        std::size_t g0 = t * groups_per_tile;
        std::size_t g1 = std::min(n_groups, g0 + groups_per_tile);
        table.groups_[t] = static_cast<std::uint32_t>(g1 - g0);
    }
    for (std::size_t k = 0; k < wl.k; ++k) {
        for (std::size_t t = 0; t < tiles; ++t) {
            std::size_t g0 = t * groups_per_tile;
            std::size_t g1 = std::min(n_groups, g0 + groups_per_tile);
            std::uint32_t c = 0;
            for (std::size_t g = g0; g < g1; ++g)
                c += wl.xMask(k, g);
            table.counts_(k, t) = c;
        }
    }
    return table;
}

PeaWork
countPeaWork(const GemmWorkload &wl, const XccTable &xcc,
             std::size_t row_group, std::size_t n_tile, int v,
             bool compensate)
{
    PeaWork work;
    const std::uint64_t g = xcc.groups(n_tile);
    const bool w_skippable = wl.weightHoSkippable;
    const std::uint64_t w_lo =
        static_cast<std::uint64_t>(wl.wLevels) - (w_skippable ? 1 : 0);
    const std::uint64_t x_lo = static_cast<std::uint64_t>(wl.xLevels) - 1;
    const std::uint64_t vv = static_cast<std::uint64_t>(v);
    const std::uint64_t w_levels = static_cast<std::uint64_t>(wl.wLevels);

    for (std::size_t k = 0; k < wl.k; ++k) {
        const bool wc = w_skippable && wl.wMask(row_group, k) != 0;
        const std::uint64_t xs = xcc.skippable(k, n_tile);

        if (w_skippable) {
            if (!wc) {
                // HO x HO at uncompressed activation groups; HO x LO
                // everywhere.
                work.dynExec += (g - xs) + g * x_lo;
                work.dynSkipped += xs;
            } else {
                work.dynSkipped += g + g * x_lo;
            }
        }
        // LO x HO products, skippable on the activation side only.
        work.dynExec += w_lo * (g - xs);
        work.dynSkipped += w_lo * xs;
        // LO x LO products: dense static work.
        work.statExec += w_lo * x_lo * g;

        if (compensate) {
            work.compAddsEq6 += (g - xs) * vv * w_levels;
            work.compAddsEq5 += xs * vv * w_levels;
        }
    }
    if (compensate) {
        // One v x v compensation outer product per output block at the
        // end of the K reduction.
        work.compMults += g * vv * vv;
    }
    return work;
}

} // namespace panacea
