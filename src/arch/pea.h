/**
 * @file
 * Per-PEA workload counting: translates compression masks into executed/
 * skipped outer-product counts for one PEA band over one output tile.
 *
 * Work classification is structural (paper §III-D): any product touching
 * an HO slice plane is dynamic (DWO work, skippable at run time); the
 * all-LO products are static (SWO work, always dense). With 4-bit
 * weights (n = 0) the single weight slice is a dense LO slice, so all
 * its products with x_HO are dynamic and with x_LO static.
 */

#ifndef PANACEA_ARCH_PEA_H
#define PANACEA_ARCH_PEA_H

#include <cstdint>
#include <vector>

#include "arch/workload.h"
#include "util/matrix.h"

namespace panacea {

/**
 * Per-(k, n-tile) counts of skippable activation vectors, precomputed so
 * PEA counting is O(K) per tile instead of O(K * TN/v).
 */
class XccTable
{
  public:
    /** Build from a workload for the given tile width. */
    static XccTable build(const GemmWorkload &wl, int tile_n, int v);

    /** @return compressed activation vectors at (k, tile). */
    std::uint32_t
    skippable(std::size_t k, std::size_t n_tile) const
    {
        return counts_(k, n_tile);
    }

    /** @return number of v-column groups in a tile (last may be short). */
    std::uint32_t groups(std::size_t n_tile) const
    {
        return groups_[n_tile];
    }

    /** @return number of n tiles. */
    std::size_t tiles() const { return groups_.size(); }

  private:
    Matrix<std::uint32_t> counts_;
    std::vector<std::uint32_t> groups_;
};

/** Outer-product counts of one PEA band over one (full-K) output tile. */
struct PeaWork
{
    std::uint64_t dynExec = 0;   ///< executed dynamic outer products
    std::uint64_t statExec = 0;  ///< executed static outer products
    std::uint64_t dynSkipped = 0;
    std::uint64_t compAddsEq6 = 0; ///< CS adds, Eq. (6) (uncompressed k)
    std::uint64_t compAddsEq5 = 0; ///< CS adds, Eq. (5) (compressed k)
    std::uint64_t compMults = 0;   ///< CS outer-product multiplies

    PeaWork &
    operator+=(const PeaWork &o)
    {
        dynExec += o.dynExec;
        statExec += o.statExec;
        dynSkipped += o.dynSkipped;
        compAddsEq6 += o.compAddsEq6;
        compAddsEq5 += o.compAddsEq5;
        compMults += o.compMults;
        return *this;
    }
};

/**
 * Count one PEA band's work for output tile column nt over the full K
 * reduction.
 *
 * @param wl         the workload
 * @param xcc        precomputed activation compression counts
 * @param row_group  the PEA's global v-row band index
 * @param n_tile     output tile column
 * @param v          slice-vector length
 * @param compensate whether r-valued skipping (and thus the CS) is active
 */
PeaWork countPeaWork(const GemmWorkload &wl, const XccTable &xcc,
                     std::size_t row_group, std::size_t n_tile, int v,
                     bool compensate);

} // namespace panacea

#endif // PANACEA_ARCH_PEA_H
