#include "arch/ppu.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/logging.h"

namespace panacea {

const char *
toString(Nonlinearity f)
{
    switch (f) {
      case Nonlinearity::None: return "none";
      case Nonlinearity::Relu: return "relu";
      case Nonlinearity::Gelu: return "gelu";
    }
    return "?";
}

float
geluExact(float x)
{
    constexpr float k = 0.7978845608f;  // sqrt(2/pi)
    return 0.5f * x *
           (1.0f + std::tanh(k * (x + 0.044715f * x * x * x)));
}

namespace {

/** PWL breakpoint table: 32 uniform segments over [-4, 4]. */
struct PwlTable
{
    static constexpr int segments = 32;
    static constexpr float lo = -4.0f;
    static constexpr float hi = 4.0f;
    std::array<float, segments + 1> y;

    PwlTable()
    {
        for (int i = 0; i <= segments; ++i) {
            float x = lo + (hi - lo) * static_cast<float>(i) / segments;
            y[static_cast<std::size_t>(i)] = geluExact(x);
        }
    }
};

const PwlTable pwlTable;

} // namespace

float
pwlGelu(float x)
{
    if (x <= PwlTable::lo)
        return 0.0f;
    if (x >= PwlTable::hi)
        return x;
    float t = (x - PwlTable::lo) / (PwlTable::hi - PwlTable::lo) *
              PwlTable::segments;
    int seg = std::min(static_cast<int>(t), PwlTable::segments - 1);
    float frac = t - static_cast<float>(seg);
    float y0 = pwlTable.y[static_cast<std::size_t>(seg)];
    float y1 = pwlTable.y[static_cast<std::size_t>(seg) + 1];
    return y0 + (y1 - y0) * frac;
}

MatrixF
applyNonlinearityPwl(const MatrixF &input, Nonlinearity f)
{
    MatrixF out(input.rows(), input.cols());
    auto src = input.data();
    auto dst = out.data();
    for (std::size_t i = 0; i < src.size(); ++i) {
        switch (f) {
          case Nonlinearity::None: dst[i] = src[i]; break;
          case Nonlinearity::Relu: dst[i] = std::max(0.0f, src[i]); break;
          case Nonlinearity::Gelu: dst[i] = pwlGelu(src[i]); break;
        }
    }
    return out;
}

MatrixF
applyNonlinearityExact(const MatrixF &input, Nonlinearity f)
{
    MatrixF out(input.rows(), input.cols());
    auto src = input.data();
    auto dst = out.data();
    for (std::size_t i = 0; i < src.size(); ++i) {
        switch (f) {
          case Nonlinearity::None: dst[i] = src[i]; break;
          case Nonlinearity::Relu: dst[i] = std::max(0.0f, src[i]); break;
          case Nonlinearity::Gelu: dst[i] = geluExact(src[i]); break;
        }
    }
    return out;
}

MatrixI32
requantize(const MatrixI64 &acc, double acc_scale, const QuantParams &out)
{
    MatrixI32 codes(acc.rows(), acc.cols());
    const double rescale = acc_scale / out.scale;
    for (std::size_t r = 0; r < acc.rows(); ++r) {
        for (std::size_t c = 0; c < acc.cols(); ++c) {
            std::int64_t code = static_cast<std::int64_t>(std::llround(
                static_cast<double>(acc(r, c)) * rescale)) + out.zeroPoint;
            codes(r, c) = static_cast<std::int32_t>(
                std::clamp<std::int64_t>(code, out.codeMin(),
                                         out.codeMax()));
        }
    }
    return codes;
}

std::uint64_t
ppuOpsFor(std::uint64_t elements)
{
    // Per element: final add (bit-slice + CS outputs), one PWL segment
    // evaluation, one requantization multiply-round, slicing/RLE amortized.
    return 3 * elements;
}

} // namespace panacea
