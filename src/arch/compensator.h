/**
 * @file
 * Compensator unit (CS, paper Fig. 11): computes the Eq. (6)
 * compensation term by reusing the weight slices already loaded for the
 * uncompressed bit-slice products. Each CS holds v running column sums
 * (one per output row of the PEA's band) and finishes the output block
 * with one small outer product against the all-r vector.
 */

#ifndef PANACEA_ARCH_COMPENSATOR_H
#define PANACEA_ARCH_COMPENSATOR_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "slicing/slice_types.h"
#include "util/logging.h"

namespace panacea {

/**
 * Functional model of one compensator for a v-row PEA band.
 */
class Compensator
{
  public:
    /** @param v band height  @param x_ho_shift HO plane shift (2^l). */
    Compensator(int v, int x_ho_shift)
        : v_(v), xHoShift_(x_ho_shift), wsum_(v, 0)
    {}

    /**
     * Absorb one loaded weight slice column (v slices of one level at
     * reduction index k that is *uncompressed* on the activation side).
     * Mirrors the CS's small S-ACCs accumulating (W_HO + W_LO)[:, k].
     */
    void
    absorbColumn(std::span<const Slice> column, int w_shift)
    {
        panic_if(column.size() != static_cast<std::size_t>(v_),
                 "CS column height mismatch");
        for (int i = 0; i < v_; ++i)
            wsum_[i] += static_cast<std::int64_t>(column[i]) << w_shift;
        adds_ += v_;
    }

    /**
     * Finish one output block: comp_i = b'_i - (r << shift) * wsum_i,
     * broadcast across the v output columns by the caller.
     *
     * @param b_prime offline-folded r * W * 1 row terms for this band
     * @param r       the frequent activation HO slice
     */
    std::vector<std::int64_t>
    finish(std::span<const std::int64_t> b_prime, Slice r)
    {
        panic_if(b_prime.size() != static_cast<std::size_t>(v_),
                 "CS b' height mismatch");
        std::vector<std::int64_t> comp(v_);
        const std::int64_t r_scaled = static_cast<std::int64_t>(r)
                                      << xHoShift_;
        for (int i = 0; i < v_; ++i)
            comp[i] = b_prime[i] - r_scaled * wsum_[i];
        mults_ += static_cast<std::uint64_t>(v_) * v_;
        return comp;
    }

    /** Clear the running sums for the next output block. */
    void
    reset()
    {
        std::fill(wsum_.begin(), wsum_.end(), 0);
    }

    /** @return accumulations performed (energy proxy). */
    std::uint64_t adds() const { return adds_; }
    /** @return multiplications performed (energy proxy). */
    std::uint64_t mults() const { return mults_; }

  private:
    int v_;
    int xHoShift_;
    std::vector<std::int64_t> wsum_;
    std::uint64_t adds_ = 0;
    std::uint64_t mults_ = 0;
};

} // namespace panacea

#endif // PANACEA_ARCH_COMPENSATOR_H
