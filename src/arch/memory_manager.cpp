#include "arch/memory_manager.h"

#include <algorithm>

#include "util/logging.h"

namespace panacea {

std::uint64_t
MemoryManager::weightBits(const GemmWorkload &wl,
                          std::size_t row_group_begin,
                          std::size_t row_group_end) const
{
    const std::uint64_t v = static_cast<std::uint64_t>(cfg_.v);
    const std::uint64_t slice_bits = v * 4;
    const std::uint64_t idx_bits =
        static_cast<std::uint64_t>(cfg_.rleIndexBits);
    const std::uint64_t groups = row_group_end - row_group_begin;
    const std::uint64_t k = wl.k;

    std::uint64_t bits = 0;
    if (wl.weightHoSkippable) {
        std::uint64_t stored = 0;
        for (std::size_t g = row_group_begin; g < row_group_end; ++g)
            for (std::size_t kk = 0; kk < k; ++kk)
                stored += wl.wMask(g, kk) ? 0 : 1;
        bits += stored * (slice_bits + idx_bits);
        // Dense LO planes below the HO plane.
        bits += groups * k * slice_bits *
                static_cast<std::uint64_t>(wl.wLevels - 1);
    } else {
        // Single dense (LO) plane, no HO compression.
        bits += groups * k * slice_bits *
                static_cast<std::uint64_t>(wl.wLevels);
    }
    return bits;
}

std::uint64_t
MemoryManager::activationBits(const GemmWorkload &wl) const
{
    const std::uint64_t v = static_cast<std::uint64_t>(cfg_.v);
    const std::uint64_t slice_bits = v * 4;
    const std::uint64_t idx_bits =
        static_cast<std::uint64_t>(cfg_.rleIndexBits);

    std::uint64_t stored = 0;
    for (auto cell : wl.xMask.data())
        stored += cell ? 0 : 1;

    std::uint64_t bits = stored * (slice_bits + idx_bits);
    bits += wl.k * wl.n * 4 * static_cast<std::uint64_t>(wl.xLevels - 1);
    return bits;
}

TrafficPlan
MemoryManager::plan(const GemmWorkload &wl) const
{
    cfg_.validate();
    panic_if(wl.m % cfg_.v != 0 || wl.n % cfg_.v != 0,
             "workload M/N must be divisible by v");

    TrafficPlan tp;
    const std::uint64_t m_tiles =
        (wl.m + cfg_.tileM - 1) / static_cast<std::uint64_t>(cfg_.tileM);
    tp.nTiles =
        (wl.n + cfg_.tileN - 1) / static_cast<std::uint64_t>(cfg_.tileN);

    const std::size_t groups_per_tile =
        static_cast<std::size_t>(cfg_.tileM / cfg_.v);
    const std::size_t total_groups = wl.m / static_cast<std::size_t>(cfg_.v);

    // --- DTP enable: the 2TM x K weight slices must fit WMEM at once ---
    std::uint64_t two_tile_bits = 0;
    if (m_tiles >= 2) {
        two_tile_bits = weightBits(
            wl, 0, std::min(total_groups, 2 * groups_per_tile));
    }
    tp.dtpEnabled = cfg_.enableDtp && m_tiles >= 2 &&
                    two_tile_bits / 8 <= cfg_.wmemBytes;
    tp.mSupers = tp.dtpEnabled ? (m_tiles + 1) / 2 : m_tiles;

    // --- Whole-operand compressed footprints ---
    tp.wBytesCompressed = (weightBits(wl, 0, total_groups) + 7) / 8;
    tp.xBytesCompressed = (activationBits(wl) + 7) / 8;
    tp.outBytes = wl.m * wl.n;  // requantized 8-bit outputs

    // --- Weight residency: one m-super's full-K slices in WMEM ---
    std::uint64_t super_bits_max = 0;
    for (std::uint64_t s = 0; s < tp.mSupers; ++s) {
        std::size_t tiles_in_super = tp.dtpEnabled ? 2 : 1;
        std::size_t g0 = static_cast<std::size_t>(s) * tiles_in_super *
                         groups_per_tile;
        std::size_t g1 = std::min(total_groups,
                                  g0 + tiles_in_super * groups_per_tile);
        super_bits_max = std::max(super_bits_max, weightBits(wl, g0, g1));
    }
    tp.weightsResident = super_bits_max / 8 <= cfg_.wmemBytes;

    // Weights are read from DRAM once per m-super when resident;
    // otherwise each n-tile pass must re-stream the super's slices.
    std::uint64_t w_dram = tp.wBytesCompressed;
    if (!tp.weightsResident)
        w_dram *= tp.nTiles;

    // --- Activation residency ---
    tp.actsResident = tp.xBytesCompressed <= cfg_.amemBytes;
    std::uint64_t x_dram = tp.xBytesCompressed;
    if (!tp.actsResident)
        x_dram *= tp.mSupers;

    tp.dramReadBytes = w_dram + x_dram;
    tp.dramWriteBytes = tp.outBytes;

    // --- On-chip traffic ---
    // WMEM: written at fill, read once per n-tile per m-super pass.
    // AMEM: written at fill, read once per m-super pass.
    // OMEM: written once and drained to DRAM.
    tp.sramWriteBytes = w_dram + x_dram + tp.outBytes;
    tp.sramReadBytes = tp.wBytesCompressed * tp.nTiles +
                       tp.xBytesCompressed * tp.mSupers + tp.outBytes;
    return tp;
}

} // namespace panacea
